package pgm

// Binary codec for built PGM indexes: the full level hierarchy plus the
// verified data-level margins are serialized, so Decode reconstructs a
// ready index without re-running the segment corridor. Little-endian
// via binio; framing and checksums live in package persist.

import (
	"repro/internal/binio"
)

// segWireBytes is the wire footprint of one segment (key, slope, pos),
// used for allocation guards.
const segWireBytes = 8 + 8 + 4

// Encode writes the built index to w.
func (idx *Index) Encode(w *binio.Writer) error {
	w.U32(uint32(idx.eps))
	w.U64(uint64(idx.n))
	w.U32(uint32(len(idx.levels)))
	for _, lvl := range idx.levels {
		w.U32(uint32(len(lvl)))
		for _, s := range lvl {
			w.U64(s.Key)
			w.F64(s.Slope)
			w.U32(uint32(s.Pos))
		}
	}
	for _, v := range idx.dataErrLo {
		w.U32(uint32(v))
	}
	for _, v := range idx.dataErrHi {
		w.U32(uint32(v))
	}
	return w.Err()
}

// Decode reconstructs a built index from r without refitting. All
// invariants the descent relies on (non-empty levels, margin arrays
// sized to the data level) are re-validated.
func Decode(r *binio.Reader) (*Index, error) {
	eps := int(r.U32())
	n := r.U64()
	nLevels := r.Count(4 + segWireBytes) // every level carries >=1 segment
	if err := r.Err(); err != nil {
		return nil, err
	}
	const maxN = 1 << 48
	if n == 0 || n > maxN {
		return nil, binio.Corruptf("pgm: implausible key count %d", n)
	}
	if eps < 1 || nLevels < 1 {
		return nil, binio.Corruptf("pgm: eps %d, levels %d", eps, nLevels)
	}
	idx := &Index{eps: eps, n: int(n)}
	idx.levels = make([][]Segment, 0, nLevels)
	for li := 0; li < nLevels; li++ {
		m := r.Count(segWireBytes)
		if err := r.Err(); err != nil {
			return nil, err
		}
		if m < 1 {
			return nil, binio.Corruptf("pgm: empty level %d", li)
		}
		lvl := make([]Segment, m)
		for i := range lvl {
			lvl[i].Key = r.U64()
			lvl[i].Slope = r.FiniteF64()
			lvl[i].Pos = int32(r.U32())
		}
		idx.levels = append(idx.levels, lvl)
	}
	m0 := len(idx.levels[0])
	if r.Remaining() < 8*m0 {
		return nil, binio.Corruptf("pgm: truncated margin arrays")
	}
	idx.dataErrLo = make([]int32, m0)
	idx.dataErrHi = make([]int32, m0)
	for i := range idx.dataErrLo {
		idx.dataErrLo[i] = int32(r.U32())
	}
	for i := range idx.dataErrHi {
		idx.dataErrHi[i] = int32(r.U32())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	for i := range idx.dataErrLo {
		if idx.dataErrLo[i] < 0 || idx.dataErrHi[i] < 0 {
			return nil, binio.Corruptf("pgm: negative data margin at segment %d", i)
		}
	}
	return idx, nil
}
