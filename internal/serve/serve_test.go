package serve

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/registry"
)

func testData(t *testing.T, n int) ([]core.Key, []uint64) {
	t.Helper()
	keys := dataset.MustGenerate(dataset.Amzn, n, 17)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i)*3 + 7
	}
	return keys, payloads
}

func expectGet(keys []core.Key, payloads []uint64, x core.Key) (uint64, bool) {
	pos := core.LowerBound(keys, x)
	if pos < len(keys) && keys[pos] == x {
		return payloads[pos], true
	}
	return 0, false
}

// TestStoreCorrectness verifies Get and GetBatch against LowerBound
// ground truth across shard boundaries, for every serve family.
func TestStoreCorrectness(t *testing.T) {
	keys, payloads := testData(t, 6000)
	for _, family := range registry.ServeFamilies {
		st, err := New(keys, payloads, Config{Shards: 5, Family: family})
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if st.NumShards() < 2 {
			t.Fatalf("%s: only %d shards", family, st.NumShards())
		}
		if st.Len() != len(keys) {
			t.Fatalf("%s: Len %d != %d", family, st.Len(), len(keys))
		}

		probes := append(dataset.Lookups(keys, 1000, 5), dataset.AbsentLookups(keys, 200, 5)...)
		probes = append(probes, 0, ^core.Key(0), keys[0], keys[len(keys)-1])
		for _, x := range probes {
			wantV, wantOK := expectGet(keys, payloads, x)
			gotV, gotOK := st.Get(x)
			if gotV != wantV || gotOK != wantOK {
				t.Fatalf("%s: Get(%d) = (%d,%v), want (%d,%v)", family, x, gotV, gotOK, wantV, wantOK)
			}
		}

		out := make([]uint64, len(probes))
		found := st.GetBatch(probes, out)
		wantFound := 0
		for i, x := range probes {
			wantV, wantOK := expectGet(keys, payloads, x)
			if wantOK {
				wantFound++
			}
			if out[i] != wantV {
				t.Fatalf("%s: GetBatch key %d -> %d, want %d", family, x, out[i], wantV)
			}
		}
		if found != wantFound {
			t.Fatalf("%s: found %d, want %d", family, found, wantFound)
		}
		st.Close()
	}
}

// TestConcurrentGetBatch hammers a >= 4 shard store from many
// concurrent callers; run under -race this is the serving layer's
// safety test.
func TestConcurrentGetBatch(t *testing.T) {
	keys, payloads := testData(t, 8000)
	st, err := New(keys, payloads, Config{Shards: 4, Family: "PGM"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumShards() < 4 {
		t.Fatalf("only %d shards, need >= 4", st.NumShards())
	}

	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			probes := dataset.Lookups(keys, 500, uint64(c+1))
			out := make([]uint64, len(probes))
			for rep := 0; rep < 20; rep++ {
				st.GetBatch(probes, out)
				for i, x := range probes {
					if want, _ := expectGet(keys, payloads, x); out[i] != want {
						errs <- "stale or wrong batch result"
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestReplaceUnderReads rebuilds one shard while readers stream
// batches: readers must never block on the writer and must always
// observe either the old or the new table, never a mix.
func TestReplaceUnderReads(t *testing.T) {
	keys, payloads := testData(t, 8000)
	st, err := New(keys, payloads, Config{Shards: 4, Family: "BTree"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// The replacement doubles shard 1's payloads over the same keys.
	sh := 1
	lo := core.LowerBound(keys, st.seps[sh])
	hi := len(keys)
	if sh+1 < len(st.seps) {
		hi = core.LowerBound(keys, st.seps[sh+1])
	}
	newPayloads := make([]uint64, hi-lo)
	for i := range newPayloads {
		newPayloads[i] = payloads[lo+i] * 2
	}

	stop := make(chan struct{})
	readerErrs := make(chan string, 4)
	var readers sync.WaitGroup
	for c := 0; c < 4; c++ {
		readers.Add(1)
		go func(c int) {
			defer readers.Done()
			probes := dataset.Lookups(keys[lo:hi], 256, uint64(c+11))
			out := make([]uint64, len(probes))
			for {
				select {
				case <-stop:
					return
				default:
				}
				st.GetBatch(probes, out)
				for i, x := range probes {
					old, _ := expectGet(keys, payloads, x)
					if out[i] != old && out[i] != old*2 {
						readerErrs <- "batch saw neither old nor new payload"
						return
					}
				}
			}
		}(c)
	}
	for rep := 0; rep < 5; rep++ {
		if err := st.Replace(sh, keys[lo:hi], newPayloads); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()
	close(readerErrs)
	for msg := range readerErrs {
		t.Fatal(msg)
	}

	// After the last replace, reads must see the new payloads.
	x := keys[lo]
	want := payloads[lo] * 2
	if got, ok := st.Get(x); !ok || got != want {
		t.Fatalf("after replace: Get(%d) = %d, want %d", x, got, want)
	}
}

// TestReplaceValidation covers the writer-path guard rails.
func TestReplaceValidation(t *testing.T) {
	keys, payloads := testData(t, 4000)
	st, err := New(keys, payloads, Config{Shards: 4, Family: "RS"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Replace(-1, keys, payloads); err == nil {
		t.Error("negative shard accepted")
	}
	if err := st.Replace(0, nil, nil); err == nil {
		t.Error("empty replacement accepted")
	}
	// A replacement crossing into the next shard's range must fail.
	if st.NumShards() >= 2 {
		if err := st.Replace(0, keys, payloads); err == nil {
			t.Error("cross-shard replacement accepted")
		}
	}
}

// TestHeterogeneousShards exercises BuilderFor: alternating families
// across shards behind one store.
func TestHeterogeneousShards(t *testing.T) {
	keys, payloads := testData(t, 6000)
	fams := []string{"RMI", "BTree", "PGM", "RBS"}
	st, err := New(keys, payloads, Config{
		Shards: 4,
		BuilderFor: func(shard int, keys []core.Key) (core.Builder, error) {
			nb, _ := registry.Builder(fams[shard%len(fams)], keys)
			return nb.Builder, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	probes := dataset.Lookups(keys, 500, 3)
	out := make([]uint64, len(probes))
	st.GetBatch(probes, out)
	for i, x := range probes {
		if want, _ := expectGet(keys, payloads, x); out[i] != want {
			t.Fatalf("key %d -> %d, want %d", x, out[i], want)
		}
	}
	if st.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
}

// TestUnknownFamily covers config validation.
func TestUnknownFamily(t *testing.T) {
	keys, payloads := testData(t, 100)
	if _, err := New(keys, payloads, Config{Family: "NoSuchIndex"}); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := New(nil, nil, Config{}); err == nil {
		t.Error("empty key set accepted")
	}
	if _, err := New(keys, payloads[:10], Config{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestShardOfMatchesSortSearch checks the inlined branchless separator
// search against the sort.Search formulation it replaced, across every
// separator-count shape (1..17 shards, including non-power-of-two
// widths) and probe positions below, at, between, and above every
// separator.
func TestShardOfMatchesSortSearch(t *testing.T) {
	oracle := func(seps []core.Key, x core.Key) int {
		i := sort.Search(len(seps), func(i int) bool { return seps[i] > x })
		if i == 0 {
			return 0
		}
		return i - 1
	}
	rng := rand.New(rand.NewSource(11))
	for nShards := 1; nShards <= 17; nShards++ {
		st := &Store{seps: make([]core.Key, nShards)}
		v := core.Key(5 + rng.Intn(100))
		for i := range st.seps {
			st.seps[i] = v
			v += core.Key(1 + rng.Intn(1000))
		}
		var probes []core.Key
		probes = append(probes, 0, ^core.Key(0))
		for _, s := range st.seps {
			probes = append(probes, s-1, s, s+1)
		}
		for q := 0; q < 200; q++ {
			probes = append(probes, core.Key(rng.Intn(int(v)+10)))
		}
		for _, x := range probes {
			if got, want := st.shardOf(x), oracle(st.seps, x); got != want {
				t.Fatalf("shardOf(%d) over %v = %d, want %d", x, st.seps, got, want)
			}
		}
	}
}
