package net

import (
	"errors"
	stdnet "net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
)

// redialStore builds a small store for the redial tests.
func redialStore(t *testing.T) (*serve.Store, []core.Key) {
	t.Helper()
	keys, err := dataset.Generate(dataset.Amzn, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	st, err := serve.New(keys, dataset.Payloads(len(keys), 7), serve.Config{Shards: 2, Family: "PGM"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st, keys
}

// TestClientRedial kills the server under a client, restarts it on the
// same address, and verifies the client reconnects on a later call
// instead of failing forever.
func TestClientRedial(t *testing.T) {
	st, keys := redialStore(t)
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := Serve(ln, st, Config{})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Get(keys[0]); err != nil {
		t.Fatalf("get before restart: %v", err)
	}
	if !c.Healthy() {
		t.Fatal("client unhealthy while connected")
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The severed connection must surface as an error, not a hang.
	if _, _, err := c.Get(keys[0]); err == nil {
		t.Fatal("get on severed connection succeeded")
	}

	ln2, err := stdnet.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	srv2 := Serve(ln2, st, Config{})
	defer srv2.Close()

	// Within a few backoff windows the client must reconnect and serve.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, found, err := c.Get(keys[1])
		if err == nil {
			if !found {
				t.Fatal("reconnected get lost the key")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never reconnected: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !c.Healthy() {
		t.Fatal("client unhealthy after reconnect")
	}

	// Close is still permanent: no redial after it.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(keys[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after Close: %v, want ErrClosed", err)
	}
}

// TestPoolSkipsDeadServer runs a pool over two servers, kills one, and
// verifies calls keep succeeding (the dead server is skipped) and that
// the revived server rejoins the rotation.
func TestPoolSkipsDeadServer(t *testing.T) {
	st, keys := redialStore(t)
	srvA, err := Listen("127.0.0.1:0", st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	lnB, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := lnB.Addr().String()
	srvB := Serve(lnB, st, Config{})

	p, err := DialPoolMulti([]string{srvA.Addr().String(), addrB}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 8; i++ {
		if _, _, err := p.TryGet(keys[i]); err != nil {
			t.Fatalf("warmup get %d: %v", i, err)
		}
	}

	if err := srvB.Close(); err != nil {
		t.Fatal(err)
	}
	// Let the pool discover the dead connections (first calls on them
	// fail and mark them), then every subsequent call must be routed to
	// the live server.
	for i := 0; i < 16; i++ {
		p.TryGet(keys[i%len(keys)])
	}
	time.Sleep(20 * time.Millisecond) // in-flight probes settle
	for i := 0; i < 64; i++ {
		if _, _, err := p.TryGet(keys[i%len(keys)]); err != nil {
			t.Fatalf("get %d with one server dead: %v", i, err)
		}
	}

	// Revive server B; background probes must bring its connections
	// back into rotation.
	lnB2, err := stdnet.Listen("tcp", addrB)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addrB, err)
	}
	srvB2 := Serve(lnB2, st, Config{})
	defer srvB2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := 0
		for _, c := range p.cs {
			if c.Healthy() {
				healthy++
			}
		}
		if healthy == len(p.cs) {
			break
		}
		p.TryGet(keys[0]) // picks trigger probes
		if time.Now().After(deadline) {
			t.Fatalf("pool never resurrected revived server (%d/%d healthy)", healthy, len(p.cs))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
