// Package rmi implements the two-stage recursive model index of Kraska
// et al., as tuned and open-sourced by the paper (Section 3.1).
//
// A two-stage RMI consists of a single stage-1 model that routes a key
// to one of B stage-2 leaf models ("branching factor" B), and per-leaf
// error bounds collected during training. Lookups evaluate two models
// and return a search bound centred on the leaf's prediction:
//
//	A(x) = f2[ floor(B * f1(x) / N) ](x)
//
// Training is top-down (Equation 2 of the paper): the stage-1 model is
// fit on the whole CDF, then each leaf is fit on exactly the keys the
// stage-1 model routes to it, so inference and training agree.
//
// Validity for absent keys: every model is monotone non-decreasing over
// its training range (enforced at fit time), so the prediction for an
// absent key x with neighbours k(i-1) < x <= k(i) lies between the
// predictions for the neighbours; widening the recorded per-leaf error
// bound by one position therefore yields a bound containing LB(x) = i.
package rmi

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
)

// Config selects the RMI architecture: model kinds for the two stages
// and the branching factor (number of stage-2 leaf models).
type Config struct {
	Stage1 ModelKind
	Stage2 ModelKind
	// Branch is the branching factor B (number of leaf models). It is
	// clamped to at least 1.
	Branch int
}

// String implements fmt.Stringer.
func (c Config) String() string {
	return fmt.Sprintf("rmi[%v,%v,B=%d]", c.Stage1, c.Stage2, c.Branch)
}

// Builder builds RMIs with a fixed configuration.
type Builder struct {
	Config Config
}

// Name implements core.Builder.
func (b Builder) Name() string { return "RMI" }

// Build implements core.Builder.
func (b Builder) Build(keys []core.Key) (core.Index, error) {
	idx, err := New(keys, b.Config)
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// Index is a trained two-stage RMI.
type Index struct {
	cfg    Config
	n      int
	stage1 model
	leaves []leaf
}

type leaf struct {
	m model
	// errLo and errHi are the search-bound margins below and above the
	// prediction. errLo covers the worst over-prediction (pred-actual)
	// and errHi the worst under-prediction (actual-pred); both include
	// the +1 widening needed for absent-key validity.
	errLo, errHi int32
	// loPos/hiPos clamp the leaf's predictions to the position range
	// it was trained on (inclusive); this keeps wild extrapolation in
	// check exactly like the reference implementation.
	loPos, hiPos int32
}

const leafSizeBytes = modelSizeBytes + 4*4

// New trains an RMI over sorted keys.
func New(keys []core.Key, cfg Config) (*Index, error) {
	n := len(keys)
	if n == 0 {
		return nil, errors.New("rmi: empty key set")
	}
	if cfg.Branch < 1 {
		cfg.Branch = 1
	}
	if cfg.Branch > n {
		cfg.Branch = n
	}
	idx := &Index{cfg: cfg, n: n}

	// Stage 1: fit on the full CDF. The model predicts positions in
	// [0, n-1]; routing scales by B/n.
	fkeys := make([]float64, n)
	for i, k := range keys {
		fkeys[i] = float64(k)
	}
	idx.stage1 = fitModel(cfg.Stage1, fkeys, 0)

	// Route every key through stage 1 with exactly the lookup-time
	// routing function, and record the span of positions each leaf
	// receives. Monotone stage-1 models make spans contiguous; the
	// span bookkeeping below stays correct even if float rounding
	// produces a stray non-monotone assignment.
	B := cfg.Branch
	idx.leaves = make([]leaf, B)
	assign := make([]int, n)
	first := make([]int, B)
	last := make([]int, B)
	for li := range first {
		first[li] = -1
	}
	for i := range fkeys {
		li := idx.route(fkeys[i])
		assign[i] = li
		if first[li] < 0 {
			first[li] = i
		}
		last[li] = i
	}

	// Fit each leaf on the contiguous span of keys it received.
	// Empty leaves get a constant model at the boundary position so
	// keys routed there still receive valid (if wide) bounds; the
	// boundary is the first position owned by any later leaf.
	nextStart := n
	for li := B - 1; li >= 0; li-- {
		lf := &idx.leaves[li]
		if first[li] < 0 {
			p := clampPos(nextStart, n)
			lf.m = fitModel(ModelLinearSpline, nil, float64(p))
			lf.loPos, lf.hiPos = int32(p), int32(p)
			lf.errLo, lf.errHi = 1, 1
			continue
		}
		lf.m = fitModel(cfg.Stage2, fkeys[first[li]:last[li]+1], float64(first[li]))
		lf.loPos, lf.hiPos = int32(first[li]), int32(last[li])
		nextStart = first[li]
	}

	// Error collection: replay every key through the lookup path so the
	// recorded bounds are exact for present keys by construction.
	for i := range fkeys {
		lf := &idx.leaves[assign[i]]
		d := lf.clampPredict(fkeys[i]) - i
		// Over-prediction (d > 0) means the true position lies below
		// the prediction: it widens the low margin, and vice versa.
		if d+1 > int(lf.errLo) {
			lf.errLo = int32(d + 1)
		}
		if -d+1 > int(lf.errHi) {
			lf.errHi = int32(-d + 1)
		}
	}
	return idx, nil
}

func clampPos(p, n int) int {
	if p < 0 {
		return 0
	}
	if p >= n {
		return n - 1
	}
	return p
}

// route maps a key (as float64) to a leaf number.
func (idx *Index) route(fkey float64) int {
	p := idx.stage1.predict(fkey)
	li := int(p * float64(idx.cfg.Branch) / float64(idx.n))
	if li < 0 {
		return 0
	}
	if li >= idx.cfg.Branch {
		return idx.cfg.Branch - 1
	}
	return li
}

// clampPredict evaluates the leaf model and clamps into the leaf's
// trained position range, returning a rounded integer position.
func (lf *leaf) clampPredict(fkey float64) int {
	p := lf.m.predict(fkey)
	// Clamp in float space: converting an out-of-range float64 to int
	// is not defined in Go and wraps to the wrong extreme on amd64.
	if p <= float64(lf.loPos) {
		return int(lf.loPos)
	}
	if p >= float64(lf.hiPos) {
		return int(lf.hiPos)
	}
	return int(math.Round(p))
}

// Lookup implements core.Index.
func (idx *Index) Lookup(key core.Key) core.Bound {
	fkey := float64(key)
	lf := &idx.leaves[idx.route(fkey)]
	pos := lf.clampPredict(fkey)
	return core.BoundAround(pos, int(lf.errLo), int(lf.errHi), idx.n)
}

// batchChunk is the LookupBatch processing granularity: the per-chunk
// leaf-routing scratch lives on the stack, and a chunk's keys stay in
// L1 between the two passes.
const batchChunk = 64

// LookupBatch implements core.BatchIndex. The batch is processed in
// two passes per chunk: pass 1 routes every key through the stage-1
// model (pure arithmetic, model coefficients pinned in registers);
// pass 2 evaluates the routed leaves. Splitting the passes decouples
// the random leaf-array loads from the routing arithmetic: the loads
// of different keys are independent, so the out-of-order core overlaps
// their cache misses instead of serializing a route→load→predict chain
// per key. Routing uses exactly the scalar route() arithmetic, so
// batched bounds are bit-identical to Lookup's.
func (idx *Index) LookupBatch(keys []core.Key, out []core.Bound) {
	n := idx.n
	var route [batchChunk]int32
	for off := 0; off < len(keys); off += batchChunk {
		end := off + batchChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		outc := out[off:end]
		for i, x := range chunk {
			route[i] = int32(idx.route(float64(x)))
		}
		for i, x := range chunk {
			lf := &idx.leaves[route[i]]
			pos := lf.clampPredict(float64(x))
			outc[i] = core.BoundAround(pos, int(lf.errLo), int(lf.errHi), n)
		}
	}
}

// SizeBytes implements core.Index.
func (idx *Index) SizeBytes() int {
	return modelSizeBytes + len(idx.leaves)*leafSizeBytes
}

// Name implements core.Index.
func (idx *Index) Name() string { return "RMI" }

// Config returns the architecture this index was trained with.
func (idx *Index) ConfigUsed() Config { return idx.cfg }

// MaxErrorWidth returns the widest possible search bound the index can
// produce (max over leaves of errLo+errHi+1); a diagnostic used by the
// tuner and the explanatory analysis.
func (idx *Index) MaxErrorWidth() int {
	w := 0
	for i := range idx.leaves {
		if e := int(idx.leaves[i].errLo + idx.leaves[i].errHi + 1); e > w {
			w = e
		}
	}
	return w
}

// AvgLog2Error returns the mean log2 of the search-bound width over all
// keys' leaves, weighted by leaf occupancy — the paper's "log2 error"
// metric (expected binary-search steps).
func (idx *Index) AvgLog2Error() float64 {
	total := 0.0
	count := 0.0
	for i := range idx.leaves {
		lf := &idx.leaves[i]
		occ := float64(lf.hiPos-lf.loPos) + 1
		if occ <= 0 {
			continue
		}
		width := float64(lf.errLo + lf.errHi + 1)
		total += occ * math.Log2(width+1)
		count += occ
	}
	if count == 0 {
		return 0
	}
	return total / count
}

// NumLeaves reports the branching factor actually used.
func (idx *Index) NumLeaves() int { return len(idx.leaves) }

// Explain returns the lookup-path internals for the performance-
// counter simulation: the routed leaf, the predicted position, and
// the resulting bound. It follows exactly the Lookup code path.
func (idx *Index) Explain(key core.Key) (leaf, pos int, b core.Bound) {
	fkey := float64(key)
	leaf = idx.route(fkey)
	lf := &idx.leaves[leaf]
	pos = lf.clampPredict(fkey)
	return leaf, pos, core.BoundAround(pos, int(lf.errLo), int(lf.errHi), idx.n)
}
