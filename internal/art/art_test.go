package art

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/indextest"
)

func TestARTCeilingMatchesReference(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 10000, 1)
	tr := NewTree()
	for i, k := range keys {
		tr.Insert(k, int32(i))
	}
	probes := indextest.ProbesFor(keys[:2000])
	for _, x := range probes {
		want := core.LowerBound(keys, x)
		k, v, found := tr.Ceiling(x)
		if want == len(keys) {
			if found {
				t.Fatalf("Ceiling(%d): found %d, want none", x, k)
			}
			continue
		}
		if !found || v != int32(want) || k != keys[want] {
			t.Fatalf("Ceiling(%d) = (%d,%d,%v), want key %d pos %d", x, k, v, found, keys[want], want)
		}
	}
}

func TestARTValidityAllDatasets(t *testing.T) {
	for _, name := range dataset.All() {
		keys := dataset.MustGenerate(name, 5000, 1)
		probes := indextest.ProbesFor(keys)
		for _, stride := range []int{1, 4, 64, 4999} {
			idx, err := Builder{Stride: stride}.Build(keys)
			if err != nil {
				t.Fatalf("%s stride=%d: %v", name, stride, err)
			}
			indextest.CheckValidity(t, idx, keys, probes)
		}
	}
}

func TestARTInsertOverwrite(t *testing.T) {
	tr := NewTree()
	tr.Insert(42, 1)
	tr.Insert(42, 7)
	if tr.Count() != 1 {
		t.Fatalf("count = %d, want 1", tr.Count())
	}
	_, v, found := tr.Ceiling(42)
	if !found || v != 7 {
		t.Fatalf("Ceiling(42) = (%d, %v)", v, found)
	}
}

func TestARTEmptyTree(t *testing.T) {
	tr := NewTree()
	if _, _, found := tr.Ceiling(5); found {
		t.Error("empty tree should find nothing")
	}
	if _, err := (Builder{}).Build(nil); err == nil {
		t.Error("expected error on empty build")
	}
}

func TestARTNodeGrowth(t *testing.T) {
	// Keys sharing a 7-byte prefix with all 256 final bytes force one
	// node through every size class.
	tr := NewTree()
	base := core.Key(0xAABBCCDD11223300)
	for i := 0; i < 256; i++ {
		tr.Insert(base|core.Key(i), int32(i))
	}
	if tr.counts[kind256] != 1 {
		t.Errorf("expected one Node256, got %d (counts=%v)", tr.counts[kind256], tr.counts)
	}
	for i := 0; i < 256; i++ {
		k, v, found := tr.Ceiling(base | core.Key(i))
		if !found || v != int32(i) || k != base|core.Key(i) {
			t.Fatalf("Ceiling(%d) = (%d,%d,%v)", base|core.Key(i), k, v, found)
		}
	}
}

func TestARTPathCompression(t *testing.T) {
	// Two keys differing only in the last byte share a 7-byte
	// compressed path: exactly one inner node.
	tr := NewTree()
	tr.Insert(0x1122334455667701, 1)
	tr.Insert(0x1122334455667702, 2)
	if tr.counts[kind4] != 1 {
		t.Errorf("expected 1 Node4, got %d", tr.counts[kind4])
	}
	// A key diverging at byte 3 splits the path.
	tr.Insert(0x11223399AA000000, 3)
	if tr.counts[kind4] != 2 {
		t.Errorf("expected 2 Node4 after split, got %d", tr.counts[kind4])
	}
	for _, k := range []core.Key{0x1122334455667701, 0x1122334455667702, 0x11223399AA000000} {
		got, _, found := tr.Ceiling(k)
		if !found || got != k {
			t.Fatalf("Ceiling(%x) = (%x, %v)", k, got, found)
		}
	}
}

func TestARTCeilingAcrossSplitPaths(t *testing.T) {
	tr := NewTree()
	keys := []core.Key{0x1000000000000000, 0x1000000000000005, 0x2000000000000000, 0xFF00000000000000}
	for i, k := range keys {
		tr.Insert(k, int32(i))
	}
	cases := []struct {
		x    core.Key
		want core.Key
		ok   bool
	}{
		{0, 0x1000000000000000, true},
		{0x1000000000000001, 0x1000000000000005, true},
		{0x1000000000000006, 0x2000000000000000, true},
		{0x3000000000000000, 0xFF00000000000000, true},
		{0xFF00000000000001, 0, false},
	}
	for _, tc := range cases {
		k, _, found := tr.Ceiling(tc.x)
		if found != tc.ok || (found && k != tc.want) {
			t.Errorf("Ceiling(%x) = (%x, %v), want (%x, %v)", tc.x, k, found, tc.want, tc.ok)
		}
	}
}

func TestARTRandomInsertCeiling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := NewTree()
	seen := map[core.Key]int32{}
	var sorted []core.Key
	for i := 0; i < 5000; i++ {
		k := core.Key(rng.Uint64())
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = int32(i)
		tr.Insert(k, int32(i))
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for q := 0; q < 3000; q++ {
		x := core.Key(rng.Uint64())
		i := core.LowerBound(sorted, x)
		k, v, found := tr.Ceiling(x)
		if i == len(sorted) {
			if found {
				t.Fatalf("Ceiling(%d) found %d, want none", x, k)
			}
			continue
		}
		if !found || k != sorted[i] || v != seen[sorted[i]] {
			t.Fatalf("Ceiling(%d) = (%d,%d,%v), want %d", x, k, v, found, sorted[i])
		}
	}
}

func TestARTDuplicateData(t *testing.T) {
	keys := []core.Key{7, 7, 7, 7, 7, 9, 9, 15, 15, 15, 15, 22}
	for _, stride := range []int{1, 2, 5} {
		idx, err := Builder{Stride: stride}.Build(keys)
		if err != nil {
			t.Fatal(err)
		}
		indextest.CheckValidity(t, idx, keys, indextest.ProbesFor(keys))
	}
}

func TestARTSizeAccounting(t *testing.T) {
	keys := dataset.MustGenerate(dataset.OSM, 10000, 1)
	full, _ := Builder{Stride: 1}.Build(keys)
	sub, _ := Builder{Stride: 16}.Build(keys)
	if sub.SizeBytes() >= full.SizeBytes() {
		t.Errorf("stride 16 (%d) not smaller than stride 1 (%d)", sub.SizeBytes(), full.SizeBytes())
	}
	if full.SizeBytes() <= 0 {
		t.Error("size must be positive")
	}
}

func TestARTBuilderName(t *testing.T) {
	if (Builder{}).Name() != "ART" {
		t.Error("builder name")
	}
	keys := dataset.MustGenerate(dataset.Face, 2000, 1)
	idx := indextest.CheckBuilder(t, Builder{Stride: 2}, keys)
	if idx.Name() != "ART" {
		t.Error("index name")
	}
}

// Property: ART ceiling agrees with the sorted-array reference under
// random keys.
func TestARTProperty(t *testing.T) {
	f := func(raw []uint64, x uint64) bool {
		uniq := map[uint64]bool{}
		tr := NewTree()
		var sorted []core.Key
		for _, k := range raw {
			if uniq[k] {
				continue
			}
			uniq[k] = true
			tr.Insert(k, 0)
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		i := core.LowerBound(sorted, x)
		k, _, found := tr.Ceiling(x)
		if i == len(sorted) {
			return !found
		}
		return found && k == sorted[i]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
