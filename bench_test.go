// Package repro's root benchmarks regenerate each table and figure of
// "Benchmarking Learned Indexes" as testing.B series: every
// sub-benchmark corresponds to one point (structure x configuration x
// dataset) of the corresponding plot. The cmd/sosd CLI runs the same
// experiments with full configuration sweeps and formatted output.
//
// Benchmarks use laptop-scale datasets (DESIGN.md substitution 2);
// shapes, not absolute nanoseconds, are the reproduction target.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/load"
	"repro/internal/perfsim"
	"repro/internal/registry"
	"repro/internal/search"
	"repro/internal/serve"
)

// benchN is the dataset scale for the root benchmarks; the CLI scales
// further via -n.
const benchN = 100_000
const benchLookups = 10_000

var envCache = map[dataset.Name]*bench.Env{}

func benchEnv(b *testing.B, name dataset.Name) *bench.Env {
	b.Helper()
	if e, ok := envCache[name]; ok {
		return e
	}
	e, err := bench.NewEnv(name, benchN, benchLookups, 42)
	if err != nil {
		b.Fatal(err)
	}
	envCache[name] = e
	return e
}

// pick thins a sweep to at most k configurations (keeping extremes).
func pick(sweep []registry.NamedBuilder, k int) []registry.NamedBuilder {
	if len(sweep) <= k {
		return sweep
	}
	out := make([]registry.NamedBuilder, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, sweep[i*(len(sweep)-1)/(k-1)])
	}
	return out
}

func lookupLoop(b *testing.B, e *bench.Env, idx core.Index, fn search.Fn) {
	b.Helper()
	b.ReportMetric(bench.MB(idx.SizeBytes()), "MB")
	var sum uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := e.Lookups[i%len(e.Lookups)]
		bd := idx.Lookup(x)
		pos := fn(e.Keys, x, bd)
		if pos < len(e.Payloads) {
			sum += e.Payloads[pos]
		}
	}
	_ = sum
}

// BenchmarkFig6_DatasetCDFs measures dataset generation (the input to
// Figure 6's CDF plots).
func BenchmarkFig6_DatasetCDFs(b *testing.B) {
	for _, name := range dataset.All() {
		b.Run(string(name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				keys := dataset.MustGenerate(name, 20_000, uint64(i+1))
				xs, _ := dataset.CDF(keys, 32)
				if len(xs) == 0 {
					b.Fatal("empty CDF")
				}
			}
		})
	}
}

// BenchmarkFig7_Pareto is Figure 7: warm lookups per structure and
// configuration across all four datasets.
func BenchmarkFig7_Pareto(b *testing.B) {
	for _, name := range dataset.All() {
		e := benchEnv(b, name)
		for _, family := range registry.ParetoFamilies {
			for _, nb := range pick(registry.Sweep(family, e.Keys), 3) {
				idx, err := nb.Builder.Build(e.Keys)
				if err != nil {
					b.Fatal(err)
				}
				b.Run(fmt.Sprintf("%s/%s/%s", name, family, nb.Label), func(b *testing.B) {
					lookupLoop(b, e, idx, search.BinarySearch)
				})
			}
		}
		b.Run(fmt.Sprintf("%s/BS", name), func(b *testing.B) {
			idx, _ := registry.Sweep("BS", e.Keys)[0].Builder.Build(e.Keys)
			lookupLoop(b, e, idx, search.BinarySearch)
		})
	}
}

// BenchmarkFig8_StringStructures is Figure 8: FST and Wormhole against
// RMI and BTree on amzn and face.
func BenchmarkFig8_StringStructures(b *testing.B) {
	for _, name := range []dataset.Name{dataset.Amzn, dataset.Face} {
		e := benchEnv(b, name)
		for _, family := range registry.StringFamilies {
			for _, nb := range pick(registry.Sweep(family, e.Keys), 2) {
				idx, err := nb.Builder.Build(e.Keys)
				if err != nil {
					b.Fatal(err)
				}
				b.Run(fmt.Sprintf("%s/%s/%s", name, family, nb.Label), func(b *testing.B) {
					lookupLoop(b, e, idx, search.BinarySearch)
				})
			}
		}
	}
}

// BenchmarkTable2_FastestVariants is Table 2: the fastest variant of
// each structure plus the hash tables on amzn.
func BenchmarkTable2_FastestVariants(b *testing.B) {
	e := benchEnv(b, dataset.Amzn)
	for _, family := range registry.Table2Families {
		nb, idx, _ := bench.BestVariant(e, family, func(e *bench.Env, idx core.Index) float64 {
			return bench.MeasureWarm(e, idx, search.BinarySearch).NsPerLookup
		})
		if idx == nil {
			continue
		}
		b.Run(fmt.Sprintf("%s/%s", family, nb.Label), func(b *testing.B) {
			lookupLoop(b, e, idx, search.BinarySearch)
		})
	}
}

// BenchmarkFig9_DatasetSizes is Figure 9: lookup latency as the
// dataset grows 1x..4x.
func BenchmarkFig9_DatasetSizes(b *testing.B) {
	for mult := 1; mult <= 4; mult++ {
		e, err := bench.NewEnv(dataset.Amzn, benchN*mult, benchLookups, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, family := range []string{"RMI", "PGM", "RS", "BTree"} {
			nb := pick(registry.Sweep(family, e.Keys), 3)[1]
			idx, err := nb.Builder.Build(e.Keys)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%dx/%s/%s", mult, family, nb.Label), func(b *testing.B) {
				lookupLoop(b, e, idx, search.BinarySearch)
			})
		}
	}
}

// BenchmarkFig10_KeySize is Figure 10: 64-bit vs rank-preserved 32-bit
// keys on amzn.
func BenchmarkFig10_KeySize(b *testing.B) {
	e64 := benchEnv(b, dataset.Amzn)
	k32 := dataset.To32(e64.Keys)
	widened := make([]core.Key, len(k32))
	for i, k := range k32 {
		widened[i] = core.Key(k)
	}
	e32 := &bench.Env{Dataset: "amzn32", Keys: widened, Payloads: e64.Payloads,
		Lookups: dataset.Lookups(widened, benchLookups, 42)}
	for _, family := range []string{"RMI", "RS", "PGM", "BTree", "FAST"} {
		for _, bits := range []string{"64", "32"} {
			e := e64
			if bits == "32" {
				e = e32
			}
			nb := pick(registry.Sweep(family, e.Keys), 3)[1]
			idx, err := nb.Builder.Build(e.Keys)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%sbit/%s", family, bits, nb.Label), func(b *testing.B) {
				lookupLoop(b, e, idx, search.BinarySearch)
			})
		}
	}
}

// BenchmarkFig11_SearchFunctions is Figure 11: binary vs linear vs
// interpolation last-mile search on amzn and osm.
func BenchmarkFig11_SearchFunctions(b *testing.B) {
	for _, name := range []dataset.Name{dataset.Amzn, dataset.OSM} {
		e := benchEnv(b, name)
		for _, family := range []string{"RMI", "PGM", "RS"} {
			nb := pick(registry.Sweep(family, e.Keys), 3)[1]
			idx, err := nb.Builder.Build(e.Keys)
			if err != nil {
				b.Fatal(err)
			}
			for _, kind := range []search.Kind{search.Binary, search.Linear, search.Interpolation} {
				b.Run(fmt.Sprintf("%s/%s/%s", name, family, kind), func(b *testing.B) {
					lookupLoop(b, e, idx, search.ByKind(kind))
				})
			}
		}
	}
}

// BenchmarkFig12_Metrics is Figure 12: simulated performance counters
// per structure (reported as extra metrics alongside ns/op).
func BenchmarkFig12_Metrics(b *testing.B) {
	for _, name := range []dataset.Name{dataset.Amzn, dataset.OSM} {
		rows, err := bench.CollectCounters(
			bench.Options{N: 50_000, Lookups: 5_000, Seed: 42}, name,
			[]string{"RMI", "PGM", "RS", "BTree", "ART"})
		if err != nil {
			b.Fatal(err)
		}
		e := benchEnv(b, name)
		for _, r := range rows[:min(len(rows), 10)] {
			r := r
			b.Run(fmt.Sprintf("%s/%s/%s", name, r.Family, r.Label), func(b *testing.B) {
				b.ReportMetric(r.CacheMisses, "cmiss/op")
				b.ReportMetric(r.BranchMisses, "brmiss/op")
				b.ReportMetric(r.Instructions, "instr/op")
				b.ReportMetric(r.Log2Err, "log2err")
				for i := 0; i < b.N; i++ {
					_ = e.Keys[i%len(e.Keys)]
				}
			})
		}
	}
}

// BenchmarkFig14_ColdCache is Figure 14: warm lookups as ns/op, with
// the cold-cache latency (cache thrashed between lookups, measured
// once outside the timed loop) reported as a companion metric.
// Thrashing inside a time-targeted loop would multiply wall time by
// the eviction cost, so the cold number comes from a fixed-size run.
func BenchmarkFig14_ColdCache(b *testing.B) {
	e := benchEnv(b, dataset.Amzn)
	for _, family := range []string{"RMI", "RS", "PGM", "BTree", "FAST"} {
		nb := pick(registry.Sweep(family, e.Keys), 3)[1]
		idx, err := nb.Builder.Build(e.Keys)
		if err != nil {
			b.Fatal(err)
		}
		cold := bench.MeasureCold(e, idx, search.BinarySearch, 200)
		b.Run(fmt.Sprintf("%s/%s", family, nb.Label), func(b *testing.B) {
			b.ReportMetric(cold.NsPerLookup, "cold-ns/op")
			lookupLoop(b, e, idx, search.BinarySearch)
		})
	}
}

// BenchmarkFig15_Fence is Figure 15: serialized (data-dependent) vs
// pipelined lookup loops.
func BenchmarkFig15_Fence(b *testing.B) {
	e := benchEnv(b, dataset.Amzn)
	for _, family := range []string{"RMI", "RS", "PGM", "BTree", "FAST"} {
		nb := pick(registry.Sweep(family, e.Keys), 3)[1]
		idx, err := nb.Builder.Build(e.Keys)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s/nofence/%s", family, nb.Label), func(b *testing.B) {
			lookupLoop(b, e, idx, search.BinarySearch)
		})
		b.Run(fmt.Sprintf("%s/fence/%s", family, nb.Label), func(b *testing.B) {
			var sum uint64
			i := 0
			n := len(e.Lookups)
			b.ResetTimer()
			for op := 0; op < b.N; op++ {
				x := e.Lookups[i]
				bd := idx.Lookup(x)
				pos := search.BinarySearch(e.Keys, x, bd)
				sum += e.Payloads[pos%len(e.Payloads)]
				i = (i + 1 + int(sum&1)) % n
			}
			_ = sum
		})
	}
}

// BenchmarkFig16a_Threads is Figure 16a: parallel lookup throughput.
func BenchmarkFig16a_Threads(b *testing.B) {
	e := benchEnv(b, dataset.Amzn)
	for _, family := range []string{"RMI", "PGM", "RS", "RBS", "BTree", "RobinHash"} {
		sweep := registry.Sweep(family, e.Keys)
		nb := sweep[len(sweep)/2]
		idx, err := nb.Builder.Build(e.Keys)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(family, func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				var sum uint64
				i := 0
				for pb.Next() {
					x := e.Lookups[i%len(e.Lookups)]
					bd := idx.Lookup(x)
					pos := search.BinarySearch(e.Keys, x, bd)
					sum += e.Payloads[pos%len(e.Payloads)]
					i++
				}
				_ = sum
			})
		})
	}
}

// BenchmarkFig16c_CacheMissRate reports the simulated cache misses per
// lookup used in Figure 16c.
func BenchmarkFig16c_CacheMissRate(b *testing.B) {
	rows, err := bench.CollectCountersMid(
		bench.Options{N: 50_000, Lookups: 5_000, Seed: 42},
		dataset.Amzn, registry.Fig16Families)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		r := r
		b.Run(r.Family, func(b *testing.B) {
			b.ReportMetric(r.CacheMisses, "cmiss/op")
			b.ReportMetric(r.CacheMisses/(r.NsPerLookup*1e-9)/1e6, "Mmiss/op/s")
			for i := 0; i < b.N; i++ {
			}
		})
	}
}

// BenchmarkFig17_BuildTimes is Figure 17: index construction time.
func BenchmarkFig17_BuildTimes(b *testing.B) {
	e := benchEnv(b, dataset.Amzn)
	families := []string{"PGM", "RS", "RMI", "RBS", "ART", "BTree", "IBTree", "FAST", "FST", "Wormhole", "RobinHash"}
	for _, family := range families {
		sweep := registry.Sweep(family, e.Keys)
		nb := sweep[len(sweep)-1] // largest (fastest-lookup) variant
		b.Run(fmt.Sprintf("%s/%s", family, nb.Label), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := nb.Builder.Build(e.Keys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// serveN sizes the serving-layer benchmarks: 1M keys (8 MB of keys +
// 8 MB of payloads) so the data array exceeds mid-level caches and the
// batched path's overlapped memory accesses have misses to hide.
const serveN = 1_000_000

var serveEnvCache *bench.Env

func serveEnv(b *testing.B) *bench.Env {
	b.Helper()
	if serveEnvCache == nil {
		e, err := bench.NewEnv(dataset.Amzn, serveN, 100_000, 42)
		if err != nil {
			b.Fatal(err)
		}
		serveEnvCache = e
	}
	return serveEnvCache
}

// serveBenchFamilies is the family set of the serving benchmarks: two
// learned indexes with a vectorized bound path plus the tree baseline,
// on the books-style amzn dataset.
var serveBenchFamilies = []string{"RMI", "PGM", "BTree"}

// BenchmarkGetBatch compares the per-key Table.Get loop against the
// batched GetBatch fast path. ns/op is per lookup in both cases.
func BenchmarkGetBatch(b *testing.B) {
	e := serveEnv(b)
	for _, family := range serveBenchFamilies {
		nb, ok := registry.Builder(family, e.Keys)
		if !ok {
			b.Fatalf("no builder for %s", family)
		}
		idx, err := nb.Builder.Build(e.Keys)
		if err != nil {
			b.Fatal(err)
		}
		t := e.Table(idx, search.BinarySearch)
		b.Run(fmt.Sprintf("%s/perkey", family), func(b *testing.B) {
			var sum uint64
			for i := 0; i < b.N; i++ {
				v, _ := t.Get(e.Lookups[i%len(e.Lookups)])
				sum += v
			}
			_ = sum
		})
		b.Run(fmt.Sprintf("%s/batch%d", family, bench.ServeBatchSize), func(b *testing.B) {
			out := make([]uint64, bench.ServeBatchSize)
			n := len(e.Lookups)
			b.ResetTimer()
			for done := 0; done < b.N; {
				lo := done % n
				hi := lo + bench.ServeBatchSize
				if hi > n {
					hi = n
				}
				if rem := b.N - done; hi-lo > rem {
					hi = lo + rem
				}
				chunk := e.Lookups[lo:hi]
				t.GetBatch(chunk, out[:len(chunk)])
				done += len(chunk)
			}
		})
	}
}

// BenchmarkServeSharded measures sharded-store batch throughput with
// parallel clients (ns/op is per lookup, aggregated over clients).
func BenchmarkServeSharded(b *testing.B) {
	e := serveEnv(b)
	for _, family := range serveBenchFamilies {
		for _, shards := range []int{1, 4, 8} {
			st, err := serve.New(e.Keys, e.Payloads, serve.Config{Shards: shards, Family: family})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/shards=%d", family, st.NumShards()), func(b *testing.B) {
				b.ReportMetric(bench.MB(st.SizeBytes()), "MB")
				b.RunParallel(func(pb *testing.PB) {
					out := make([]uint64, bench.ServeBatchSize)
					chunk := make([]core.Key, 0, bench.ServeBatchSize)
					i := 0
					for {
						chunk = chunk[:0]
						for len(chunk) < bench.ServeBatchSize && pb.Next() {
							chunk = append(chunk, e.Lookups[i%len(e.Lookups)])
							i++
						}
						if len(chunk) == 0 {
							return
						}
						st.GetBatch(chunk, out[:len(chunk)])
						if len(chunk) < bench.ServeBatchSize {
							return
						}
					}
				})
			})
			st.Close()
		}
	}
}

// BenchmarkServeMixed measures the mutable store under a YCSB-A-style
// 50/50 zipfian read/write mix (ns/op is per operation; background
// compactions run concurrently, as in a live system).
func BenchmarkServeMixed(b *testing.B) {
	e := serveEnv(b)
	for _, family := range serveBenchFamilies {
		b.Run(family, func(b *testing.B) {
			st, err := serve.New(e.Keys, e.Payloads, serve.Config{
				Shards: 4, Family: family, CompactThreshold: serve.DefaultCompactThreshold,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			reads := dataset.ZipfLookups(e.Keys, 1<<16, bench.YCSBTheta, 7)
			inserts := dataset.InsertKeys(e.Keys, 1<<15, 9)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i&1 == 0 {
					st.Get(reads[i%len(reads)])
				} else if i&2 == 0 {
					st.Put(inserts[(i>>2)%len(inserts)], uint64(i))
				} else {
					st.Put(reads[i%len(reads)], uint64(i))
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(st.Compactions()), "compactions")
		})
	}
}

// BenchmarkServeTail measures the mutable store under the tail-latency
// generators on a YCSB-B-style 95/5 zipfian mix: a closed loop at
// saturation, then an open loop offering half the measured capacity on
// a Poisson schedule with latency measured from scheduled arrivals.
// ns/op is wall time per operation; the tail metrics are the point of
// the benchmark: p50/p99/p99.9 in ns alongside achieved kops/s.
func BenchmarkServeTail(b *testing.B) {
	e := serveEnv(b)
	const readFrac, theta = 0.95, bench.YCSBTheta
	workers := bench.TailWorkers()
	for _, family := range serveBenchFamilies {
		// Every run — capacity probe, closed, open — gets a fresh store,
		// mirroring ServeTailSweep: earlier writes and compactions must
		// not leak into later measurements.
		newStore := func(b *testing.B) *serve.Store {
			b.Helper()
			st, err := serve.New(e.Keys, e.Payloads, serve.Config{
				Shards: 4, Family: family, CompactThreshold: serve.DefaultCompactThreshold,
			})
			if err != nil {
				b.Fatal(err)
			}
			return st
		}
		// Capacity probe for the open loop's offered rate (fixed size,
		// outside any timed loop, on its own store).
		probeSt := newStore(b)
		probe := load.RunClosed(probeSt, load.MixedOps(e.Keys, 20_000, readFrac, theta, 7),
			load.Config{Workers: workers})
		probeSt.Close()

		reportTail := func(b *testing.B, res *load.Result) {
			s := res.Hist.Summary()
			b.ReportMetric(res.Throughput/1e3, "kops/s")
			b.ReportMetric(float64(s.P50), "p50-ns")
			b.ReportMetric(float64(s.P99), "p99-ns")
			b.ReportMetric(float64(s.P999), "p99.9-ns")
		}
		b.Run(fmt.Sprintf("%s/closed", family), func(b *testing.B) {
			st := newStore(b)
			defer st.Close()
			ops := load.MixedOps(e.Keys, b.N, readFrac, theta, 7)
			b.ResetTimer()
			res := load.RunClosed(st, ops, load.Config{Workers: workers})
			b.StopTimer()
			reportTail(b, res)
		})
		b.Run(fmt.Sprintf("%s/open50", family), func(b *testing.B) {
			st := newStore(b)
			defer st.Close()
			ops := load.MixedOps(e.Keys, b.N, readFrac, theta, 7)
			b.ResetTimer()
			res := load.RunOpen(st, ops, load.Config{
				Workers: workers, Rate: probe.Throughput / 2, Seed: 7,
			})
			b.StopTimer()
			reportTail(b, res)
		})
	}
}

// BenchmarkPersistColdWarm measures time to a ready-to-serve store
// from raw keys (cold: build + tune) vs from a snapshot (warm: load +
// decode, no retraining) — the serving-layer form of the paper's
// build-cost axis (Figures 9 and 17).
func BenchmarkPersistColdWarm(b *testing.B) {
	e := benchEnv(b, dataset.Amzn)
	for _, family := range serveBenchFamilies {
		b.Run(family+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := serve.New(e.Keys, e.Payloads, serve.Config{Shards: 4, Family: family})
				if err != nil {
					b.Fatal(err)
				}
				st.Close()
			}
		})
		b.Run(family+"/warm", func(b *testing.B) {
			dir := b.TempDir()
			st, err := serve.New(e.Keys, e.Payloads, serve.Config{Shards: 4, Family: family})
			if err != nil {
				b.Fatal(err)
			}
			if err := st.Snapshot(dir); err != nil {
				b.Fatal(err)
			}
			st.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				warm, err := serve.Open(dir, serve.Config{})
				if err != nil {
					b.Fatal(err)
				}
				warm.Close()
			}
		})
	}
}

// BenchmarkPerfsimOverhead quantifies the simulator itself (not a
// paper figure; a sanity number for the methodology).
func BenchmarkPerfsimOverhead(b *testing.B) {
	m := perfsim.New(perfsim.Config{})
	r := m.Alloc(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(r, (i*64)%(1<<20), 8)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
