package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// testRNG is a tiny splitmix64 for deterministic op sequences.
type testRNG struct{ s uint64 }

func (r *testRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *testRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func TestDeltaWith(t *testing.T) {
	d := emptyDelta
	d = d.with(50, 500, false)
	d = d.with(10, 100, false)
	d = d.with(90, 900, false)
	d = d.with(50, 501, false) // update
	d = d.with(10, 0, true)    // tombstone
	if d.len() != 3 {
		t.Fatalf("len = %d, want 3", d.len())
	}
	if !core.IsSorted(d.keys) {
		t.Fatalf("delta keys not sorted: %v", d.keys)
	}
	if v, tomb, ok := d.get(50); !ok || tomb || v != 501 {
		t.Fatalf("get(50) = (%d,%v,%v), want (501,false,true)", v, tomb, ok)
	}
	if _, tomb, ok := d.get(10); !ok || !tomb {
		t.Fatalf("get(10): want tombstone")
	}
	if _, _, ok := d.get(60); ok {
		t.Fatalf("get(60): want absent")
	}
	// Copy-on-write: the older snapshot must be unaffected.
	old := d
	_ = d.with(50, 999, false)
	if v, _, _ := old.get(50); v != 501 {
		t.Fatalf("with mutated the receiver: get(50) = %d", v)
	}
}

func TestMergeDelta(t *testing.T) {
	bk := []core.Key{2, 4, 4, 6, 8}
	bv := []uint64{20, 40, 41, 60, 80}
	d := emptyDelta.
		with(1, 10, false). // insert below
		with(4, 44, false). // upsert collapses the duplicate run
		with(6, 0, true).   // delete
		with(9, 90, false). // insert above
		with(7, 0, true)    // tombstone for an absent key: no effect
	k, v := mergeDelta(bk, bv, d)
	wantK := []core.Key{1, 2, 4, 8, 9}
	wantV := []uint64{10, 20, 44, 80, 90}
	if len(k) != len(wantK) {
		t.Fatalf("merged keys %v, want %v", k, wantK)
	}
	for i := range wantK {
		if k[i] != wantK[i] || v[i] != wantV[i] {
			t.Fatalf("merged[%d] = (%d,%d), want (%d,%d)", i, k[i], v[i], wantK[i], wantV[i])
		}
	}
}

// TestMutableOracle runs a randomized insert/update/delete/get
// sequence against a map oracle, with a small compaction threshold so
// background compactions fire mid-sequence, then checks the full store
// content (Get, GetBatch, Len, Range) before and after a forced
// Compact. The write path must be invisible to correctness regardless
// of compaction timing.
func TestMutableOracle(t *testing.T) {
	for _, family := range []string{"PGM", "BTree", "RMI"} {
		t.Run(family, func(t *testing.T) {
			all := dataset.MustGenerate(dataset.Amzn, 8000, 23)
			// Build over the even-indexed half; odds are the insert pool.
			var baseKeys []core.Key
			var basePayloads []uint64
			oracle := make(map[core.Key]uint64)
			for i := 0; i < len(all); i += 2 {
				baseKeys = append(baseKeys, all[i])
				basePayloads = append(basePayloads, uint64(i)+1)
				oracle[all[i]] = uint64(i) + 1
			}
			st, err := New(baseKeys, basePayloads, Config{
				Shards: 4, Family: family, CompactThreshold: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()

			// Boundary keys exercise routing below the first separator
			// and at the top of the key space.
			extremes := []core.Key{0, 1, baseKeys[0] - 1, ^core.Key(0)}
			universe := append(append([]core.Key{}, all...), extremes...)

			r := &testRNG{s: 99}
			for op := 0; op < 6000; op++ {
				x := universe[r.intn(len(universe))]
				switch c := r.intn(10); {
				case c < 5: // get
					wantV, wantOK := oracle[x]
					gotV, gotOK := st.Get(x)
					if gotOK != wantOK || (wantOK && gotV != wantV) {
						t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", op, x, gotV, gotOK, wantV, wantOK)
					}
				case c < 8: // put
					v := uint64(op)<<8 | 7
					st.Put(x, v)
					oracle[x] = v
				default: // delete
					st.Delete(x)
					delete(oracle, x)
				}
			}

			checkAll := func(stage string) {
				t.Helper()
				for _, x := range universe {
					wantV, wantOK := oracle[x]
					gotV, gotOK := st.Get(x)
					if gotOK != wantOK || (wantOK && gotV != wantV) {
						t.Fatalf("%s: Get(%d) = (%d,%v), want (%d,%v)", stage, x, gotV, gotOK, wantV, wantOK)
					}
				}
				out := make([]uint64, len(universe))
				found := st.GetBatch(universe, out)
				for i, x := range universe {
					wantV, wantOK := oracle[x]
					if wantOK && out[i] != wantV {
						t.Fatalf("%s: GetBatch key %d -> %d, want %d", stage, x, out[i], wantV)
					}
					if !wantOK && out[i] != 0 {
						t.Fatalf("%s: GetBatch absent key %d -> %d, want 0", stage, x, out[i])
					}
				}
				// Universe keys are distinct, so the oracle size is the
				// expected found count.
				if found != len(oracle) {
					t.Fatalf("%s: GetBatch found %d, want %d", stage, found, len(oracle))
				}
				if st.Len() != len(oracle) {
					t.Fatalf("%s: Len = %d, want %d", stage, st.Len(), len(oracle))
				}
				// Range over everything below the max key, plus a point
				// check for the max key itself (Range's hi is exclusive).
				ks, vs := st.Range(0, ^core.Key(0))
				wantN := len(oracle)
				if _, hasMax := oracle[^core.Key(0)]; hasMax {
					wantN--
				}
				if len(ks) != wantN {
					t.Fatalf("%s: Range returned %d pairs, want %d", stage, len(ks), wantN)
				}
				for i := range ks {
					if i > 0 && ks[i] <= ks[i-1] {
						t.Fatalf("%s: Range keys not strictly ascending at %d: %d <= %d", stage, i, ks[i], ks[i-1])
					}
					if want := oracle[ks[i]]; vs[i] != want {
						t.Fatalf("%s: Range key %d -> %d, want %d", stage, ks[i], vs[i], want)
					}
				}
			}

			checkAll("pre-compact")
			st.WaitCompactions()
			checkAll("post-background-compact")
			if st.Compactions() == 0 {
				t.Error("no background compactions fired despite threshold 64")
			}
			if err := st.Compact(); err != nil {
				t.Fatal(err)
			}
			if st.DeltaLen() != 0 {
				t.Fatalf("DeltaLen = %d after Compact, want 0", st.DeltaLen())
			}
			checkAll("post-compact")
		})
	}
}

// TestScanEarlyStop covers Scan's visit-false contract and windowed
// ranges crossing shard boundaries with pending writes.
func TestScanEarlyStop(t *testing.T) {
	keys, payloads := testData(t, 4000)
	st, err := New(keys, payloads, Config{Shards: 4, Family: "BTree", CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Delete one key and insert one key in the middle of the range.
	mid := keys[len(keys)/2]
	st.Delete(mid)
	ins := mid + 1
	for core.LowerBound(keys, ins) < len(keys) && keys[core.LowerBound(keys, ins)] == ins {
		ins++
	}
	st.Put(ins, 424242)

	n := st.Scan(0, ^core.Key(0), func(core.Key, uint64) bool { return false })
	if n != 1 {
		t.Fatalf("early-stop scan visited %d, want 1", n)
	}
	var got []core.Key
	st.Scan(mid, ins+1, func(k core.Key, v uint64) bool {
		got = append(got, k)
		return true
	})
	for _, k := range got {
		if k == mid {
			t.Fatalf("deleted key %d visible in scan", mid)
		}
	}
	found := false
	for _, k := range got {
		if k == ins {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted key %d missing from scan window %v", ins, got)
	}
}

// TestDeleteEverything drains a store shard by shard down to the empty
// table path.
func TestDeleteEverything(t *testing.T) {
	keys, payloads := testData(t, 600)
	st, err := New(keys, payloads, Config{Shards: 3, Family: "PGM", CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, k := range keys {
		st.Delete(k)
	}
	if st.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything, want 0", st.Len())
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 || st.DeltaLen() != 0 {
		t.Fatalf("after compact: Len=%d DeltaLen=%d, want 0/0", st.Len(), st.DeltaLen())
	}
	if _, ok := st.Get(keys[0]); ok {
		t.Fatal("deleted key still readable after compact")
	}
	// The store must accept new writes on empty shards.
	st.Put(keys[42], 7)
	if v, ok := st.Get(keys[42]); !ok || v != 7 {
		t.Fatalf("Get after reinsert = (%d,%v), want (7,true)", v, ok)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if v, ok := st.Get(keys[42]); !ok || v != 7 {
		t.Fatalf("Get after reinsert+compact = (%d,%v), want (7,true)", v, ok)
	}
}

// TestReplaceDiscardsPending: Replace supersedes a shard wholesale,
// dropping its uncompacted writes.
func TestReplaceDiscardsPending(t *testing.T) {
	keys, payloads := testData(t, 2000)
	st, err := New(keys, payloads, Config{Shards: 2, Family: "BTree", CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	x := st.seps[0] // first key of shard 0
	st.Put(x, 111111)
	lo := 0
	hi := core.LowerBound(keys, st.seps[1])
	if err := st.Replace(0, keys[lo:hi], payloads[lo:hi]); err != nil {
		t.Fatal(err)
	}
	if v, ok := st.Get(x); !ok || v != payloads[0] {
		t.Fatalf("Get(%d) = (%d,%v) after Replace, want original (%d,true)", x, v, ok, payloads[0])
	}
	if st.DeltaLen() != 0 {
		t.Fatalf("DeltaLen = %d after Replace, want 0", st.DeltaLen())
	}
}

// TestCompactionTrigger: crossing the threshold compacts in the
// background without any manual nudge.
func TestCompactionTrigger(t *testing.T) {
	keys, payloads := testData(t, 4000)
	st, err := New(keys, payloads, Config{Shards: 2, Family: "PGM", CompactThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ins := dataset.InsertKeys(keys, 1000, 3)
	for i, k := range ins {
		st.Put(k, uint64(i)+1)
	}
	deadline := time.Now().Add(10 * time.Second)
	for st.DeltaLen() >= 100 || st.Compactions() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never drained: delta=%d compactions=%d",
				st.DeltaLen(), st.Compactions())
		}
		time.Sleep(time.Millisecond)
	}
	// Every insert must have survived the merges.
	for i, k := range ins {
		if v, ok := st.Get(k); !ok || v != uint64(i)+1 {
			t.Fatalf("insert %d lost after compaction: (%d,%v)", k, v, ok)
		}
	}
	if st.Len() != len(keys)+len(ins) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(keys)+len(ins))
	}
}

// TestMixedRace hammers one store from concurrent writers, batch
// readers, scanners, and the background compactor; run under -race
// this is the write path's safety test. Writers own disjoint key
// slices so final values are deterministic; base keys are never
// deleted, so readers can assert presence throughout.
func TestMixedRace(t *testing.T) {
	keys, payloads := testData(t, 6000)
	st, err := New(keys, payloads, Config{Shards: 4, Family: "PGM", CompactThreshold: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const writers = 4
	const readers = 3
	inserts := dataset.InsertKeys(keys, 2000, 77)
	var wg sync.WaitGroup
	errs := make(chan string, writers+readers+1)

	for c := 0; c < writers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Writer c owns universe positions ≡ c (mod writers).
			for rep := 0; rep < 3; rep++ {
				for i := c; i < len(inserts); i += writers {
					st.Put(inserts[i], uint64(rep)<<32|uint64(i))
				}
				for i := c; i < len(keys); i += 4 * writers {
					st.Put(keys[i], uint64(rep)<<32|uint64(i)|1<<63)
				}
			}
		}(c)
	}
	for c := 0; c < readers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			probes := dataset.Lookups(keys, 512, uint64(c+31))
			out := make([]uint64, len(probes))
			for rep := 0; rep < 30; rep++ {
				found := st.GetBatch(probes, out)
				if found != len(probes) {
					errs <- "batch lost a base key (never deleted)"
					return
				}
				for _, x := range probes[:8] {
					if _, ok := st.Get(x); !ok {
						errs <- "point read lost a base key"
						return
					}
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for rep := 0; rep < 10; rep++ {
			prev := core.Key(0)
			first := true
			st.Scan(0, ^core.Key(0), func(k core.Key, _ uint64) bool {
				if !first && k <= prev {
					errs <- "scan keys not strictly ascending"
					return false
				}
				first, prev = false, k
				return true
			})
		}
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	// Deterministic final state: last rep wins for every owned key.
	for i, k := range inserts {
		want := uint64(2)<<32 | uint64(i)
		if v, ok := st.Get(k); !ok || v != want {
			t.Fatalf("insert %d = (%d,%v), want (%d,true)", k, v, ok, want)
		}
	}
	if st.Len() != len(keys)+len(inserts) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(keys)+len(inserts))
	}
}
