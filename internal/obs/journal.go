package obs

import (
	"sync"
	"time"
)

// DefaultJournalCap is the event journal's default ring capacity.
const DefaultJournalCap = 1024

// Event is one write-path decision: a delta flush, a minor (tier)
// merge, or a major merge, with the inputs the tiering policy saw when
// it chose. Durations and EWMA costs are nanoseconds.
type Event struct {
	Seq        uint64        `json:"seq"`
	Time       time.Time     `json:"time"`
	Shard      int           `json:"shard"`
	Kind       string        `json:"kind"` // "flush", "minor", or "major"
	RunsBefore int           `json:"runs_before"`
	RunsAfter  int           `json:"runs_after"`
	Keys       int           `json:"keys"` // keys written by this stage
	Dur        time.Duration `json:"dur_ns"`
	ReadAmp    float64       `json:"read_amp"`   // measured window amp at the decision
	WindowOps  int64         `json:"window_ops"` // lookups in the window
	MajorNs    float64       `json:"major_ns_per_key"`
	MinorNs    float64       `json:"minor_ns_per_key"`
}

// Journal is a bounded in-memory ring of write-path events: appends
// past the capacity evict the oldest event, so a long-running server
// holds the most recent history at fixed memory. Appends take a
// mutex — they ride compactions, which run for milliseconds, never the
// read path. A nil *Journal is valid and drops everything.
type Journal struct {
	mu     sync.Mutex
	buf    []Event
	head   int // index of the oldest event when full
	seq    uint64
	counts map[string]uint64
}

// NewJournal returns a journal holding the most recent capacity
// events; capacity <= 0 uses DefaultJournalCap.
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{buf: make([]Event, 0, capacity), counts: map[string]uint64{}}
}

// Append records one event, evicting the oldest when full. The
// journal assigns Seq and stamps Time if unset.
func (j *Journal) Append(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e.Seq = j.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	j.counts[e.Kind]++
	if len(j.buf) < cap(j.buf) {
		j.buf = append(j.buf, e)
		return
	}
	j.buf[j.head] = e
	j.head = (j.head + 1) % len(j.buf)
}

// Events returns the retained events oldest-first, as an independent
// copy.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.buf))
	out = append(out, j.buf[j.head:]...)
	out = append(out, j.buf[:j.head]...)
	return out
}

// Total reports the number of events ever appended (retained or
// evicted).
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Count reports the number of events of one kind ever appended.
func (j *Journal) Count(kind string) uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.counts[kind]
}

// Evicted reports how many events the ring has dropped.
func (j *Journal) Evicted() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq - uint64(len(j.buf))
}
