// Package hashidx implements the two hash-table baselines of Table 2:
// a RobinHood open-addressing table and a bucketized Cuckoo map.
//
// Hash tables answer point lookups only (they do not support lower
// bound queries, as the paper discusses); their core.Index adapters
// return an exact single-position bound for present keys and the full
// bound for absent ones. The paper's SIMD bucket probes in the Cuckoo
// map are replaced by scalar 4-slot scans (DESIGN.md substitution 5).
package hashidx

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// hash1 is Fibonacci multiplicative hashing.
func hash1(x uint64) uint64 {
	return x * 0x9E3779B97F4A7C15
}

// hash2 is a second independent mix (splitmix64 finalizer).
func hash2(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// RobinHood is an open-addressing hash table with Robin Hood
// displacement: on collision, the entry farther from its home slot
// wins, keeping probe-length variance low.
type RobinHood struct {
	keys  []uint64
	vals  []int32
	dist  []int8 // probe distance from home slot; -1 = empty
	mask  uint64
	count int
}

// maxProbe caps the stored displacement; tables sized from the load
// factor below stay far under it.
const maxProbe = 120

// NewRobinHood builds a table sized for n entries at the given load
// factor (the paper found 0.25 maximizes RobinHood lookup speed).
func NewRobinHood(n int, loadFactor float64) (*RobinHood, error) {
	if loadFactor <= 0 || loadFactor > 1 {
		return nil, fmt.Errorf("hashidx: invalid load factor %f", loadFactor)
	}
	capacity := 16
	for float64(capacity)*loadFactor < float64(n) {
		capacity <<= 1
	}
	t := &RobinHood{
		keys: make([]uint64, capacity),
		vals: make([]int32, capacity),
		dist: make([]int8, capacity),
		mask: uint64(capacity - 1),
	}
	for i := range t.dist {
		t.dist[i] = -1
	}
	return t, nil
}

// Insert adds key -> val. Existing keys are overwritten.
func (t *RobinHood) Insert(key uint64, val int32) {
	slot := hash1(key) & t.mask
	d := int8(0)
	for {
		if t.dist[slot] < 0 {
			t.keys[slot], t.vals[slot], t.dist[slot] = key, val, d
			t.count++
			return
		}
		if t.keys[slot] == key {
			t.vals[slot] = val
			return
		}
		if t.dist[slot] < d {
			// Robin Hood swap: displace the richer entry.
			t.keys[slot], key = key, t.keys[slot]
			t.vals[slot], val = val, t.vals[slot]
			t.dist[slot], d = d, t.dist[slot]
		}
		slot = (slot + 1) & t.mask
		d++
		if d >= maxProbe {
			t.growAndReinsert(key, val)
			return
		}
	}
}

func (t *RobinHood) growAndReinsert(key uint64, val int32) {
	old := *t
	capacity := len(old.keys) * 2
	t.keys = make([]uint64, capacity)
	t.vals = make([]int32, capacity)
	t.dist = make([]int8, capacity)
	t.mask = uint64(capacity - 1)
	t.count = 0
	for i := range t.dist {
		t.dist[i] = -1
	}
	for i, d := range old.dist {
		if d >= 0 {
			t.Insert(old.keys[i], old.vals[i])
		}
	}
	t.Insert(key, val)
}

// Get returns the value stored for key.
func (t *RobinHood) Get(key uint64) (int32, bool) {
	slot := hash1(key) & t.mask
	d := int8(0)
	for {
		sd := t.dist[slot]
		if sd < 0 || sd < d {
			// An entry poorer than us would have displaced anything
			// here: the key is absent.
			return 0, false
		}
		if t.keys[slot] == key {
			return t.vals[slot], true
		}
		slot = (slot + 1) & t.mask
		d++
		if d >= maxProbe {
			return 0, false
		}
	}
}

// Count returns the number of stored entries.
func (t *RobinHood) Count() int { return t.count }

// SizeBytes reports the table footprint.
func (t *RobinHood) SizeBytes() int { return len(t.keys) * (8 + 4 + 1) }

// Cuckoo is a bucketized cuckoo hash table: two candidate buckets of
// four slots each per key.
type Cuckoo struct {
	keys    []uint64 // nBuckets*4 slots
	vals    []int32
	used    []bool
	nBucket uint64
	count   int
	rng     uint64
}

const cuckooSlots = 4
const maxKicks = 500

// NewCuckoo builds a table sized for n entries at the given load
// factor (the paper found 0.99 maximizes Cuckoo lookup speed).
func NewCuckoo(n int, loadFactor float64) (*Cuckoo, error) {
	if loadFactor <= 0 || loadFactor > 1 {
		return nil, fmt.Errorf("hashidx: invalid load factor %f", loadFactor)
	}
	buckets := uint64(1)
	for float64(buckets*cuckooSlots)*loadFactor < float64(n) {
		buckets <<= 1
	}
	return newCuckooBuckets(buckets), nil
}

func newCuckooBuckets(buckets uint64) *Cuckoo {
	return &Cuckoo{
		keys:    make([]uint64, buckets*cuckooSlots),
		vals:    make([]int32, buckets*cuckooSlots),
		used:    make([]bool, buckets*cuckooSlots),
		nBucket: buckets,
		rng:     0x853C49E6748FEA9B,
	}
}

func (t *Cuckoo) buckets(key uint64) (uint64, uint64) {
	b1 := hash1(key) & (t.nBucket - 1)
	b2 := hash2(key) & (t.nBucket - 1)
	return b1, b2
}

func (t *Cuckoo) nextRand() uint64 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return t.rng
}

// Insert adds key -> val; existing keys are overwritten.
func (t *Cuckoo) Insert(key uint64, val int32) {
	if t.update(key, val) {
		return
	}
	for kick := 0; kick < maxKicks; kick++ {
		b1, b2 := t.buckets(key)
		if t.place(b1, key, val) || t.place(b2, key, val) {
			t.count++
			return
		}
		// Evict a random slot from a random candidate bucket.
		b := b1
		if t.nextRand()&1 == 0 {
			b = b2
		}
		slot := b*cuckooSlots + t.nextRand()%cuckooSlots
		key, t.keys[slot] = t.keys[slot], key
		val, t.vals[slot] = t.vals[slot], val
	}
	// Persistent failure: grow and rehash.
	t.grow()
	t.Insert(key, val)
}

func (t *Cuckoo) update(key uint64, val int32) bool {
	b1, b2 := t.buckets(key)
	for _, b := range [2]uint64{b1, b2} {
		base := b * cuckooSlots
		for s := uint64(0); s < cuckooSlots; s++ {
			if t.used[base+s] && t.keys[base+s] == key {
				t.vals[base+s] = val
				return true
			}
		}
	}
	return false
}

func (t *Cuckoo) place(b uint64, key uint64, val int32) bool {
	base := b * cuckooSlots
	for s := uint64(0); s < cuckooSlots; s++ {
		if !t.used[base+s] {
			t.keys[base+s], t.vals[base+s], t.used[base+s] = key, val, true
			return true
		}
	}
	return false
}

func (t *Cuckoo) grow() {
	old := *t
	*t = *newCuckooBuckets(old.nBucket * 2)
	for i, u := range old.used {
		if u {
			t.Insert(old.keys[i], old.vals[i])
		}
	}
}

// Get returns the value stored for key.
func (t *Cuckoo) Get(key uint64) (int32, bool) {
	b1, b2 := t.buckets(key)
	for _, b := range [2]uint64{b1, b2} {
		base := b * cuckooSlots
		for s := uint64(0); s < cuckooSlots; s++ {
			if t.used[base+s] && t.keys[base+s] == key {
				return t.vals[base+s], true
			}
		}
	}
	return 0, false
}

// Count returns the number of stored entries.
func (t *Cuckoo) Count() int { return t.count }

// SizeBytes reports the table footprint.
func (t *Cuckoo) SizeBytes() int { return len(t.keys) * (8 + 4 + 1) }

// pointIndex adapts a hash table to core.Index: exact bounds for
// present keys, the trivial full bound otherwise.
type pointIndex struct {
	get  func(uint64) (int32, bool)
	size func() int
	n    int
	name string
}

func (p *pointIndex) Lookup(key core.Key) core.Bound {
	if pos, ok := p.get(key); ok {
		return core.Bound{Lo: int(pos), Hi: int(pos) + 1}
	}
	return core.FullBound(p.n)
}

func (p *pointIndex) SizeBytes() int { return p.size() }
func (p *pointIndex) Name() string   { return p.name }

// RobinHoodBuilder builds a RobinHood-backed point index mapping each
// key to its first (lower-bound) position.
type RobinHoodBuilder struct {
	// LoadFactor defaults to the paper's 0.25 when zero.
	LoadFactor float64
}

// Name implements core.Builder.
func (RobinHoodBuilder) Name() string { return "RobinHash" }

// Build implements core.Builder.
func (b RobinHoodBuilder) Build(keys []core.Key) (core.Index, error) {
	if len(keys) == 0 {
		return nil, errors.New("hashidx: empty key set")
	}
	lf := b.LoadFactor
	if lf == 0 {
		lf = 0.25
	}
	t, err := NewRobinHood(len(keys), lf)
	if err != nil {
		return nil, err
	}
	for i, k := range keys {
		if i > 0 && keys[i-1] == k {
			continue // keep the lower-bound position for duplicates
		}
		t.Insert(k, int32(i))
	}
	return &pointIndex{get: t.Get, size: t.SizeBytes, n: len(keys), name: "RobinHash"}, nil
}

// CuckooBuilder builds a Cuckoo-backed point index.
type CuckooBuilder struct {
	// LoadFactor defaults to the paper's 0.99 when zero.
	LoadFactor float64
}

// Name implements core.Builder.
func (CuckooBuilder) Name() string { return "CuckooMap" }

// Build implements core.Builder.
func (b CuckooBuilder) Build(keys []core.Key) (core.Index, error) {
	if len(keys) == 0 {
		return nil, errors.New("hashidx: empty key set")
	}
	lf := b.LoadFactor
	if lf == 0 {
		lf = 0.99
	}
	t, err := NewCuckoo(len(keys), lf)
	if err != nil {
		return nil, err
	}
	for i, k := range keys {
		if i > 0 && keys[i-1] == k {
			continue
		}
		t.Insert(k, int32(i))
	}
	return &pointIndex{get: t.Get, size: t.SizeBytes, n: len(keys), name: "CuckooMap"}, nil
}

// Probe reports the probe sequence of a RobinHood lookup: the home
// slot and the number of slots inspected; used by the performance-
// counter simulation.
func (t *RobinHood) Probe(key uint64) (home uint64, slots int, found bool) {
	home = hash1(key) & t.mask
	slot := home
	d := int8(0)
	for {
		slots++
		sd := t.dist[slot]
		if sd < 0 || sd < d {
			return home, slots, false
		}
		if t.keys[slot] == key {
			return home, slots, true
		}
		slot = (slot + 1) & t.mask
		d++
		if d >= maxProbe {
			return home, slots, false
		}
	}
}

// Slots reports the table capacity in slots.
func (t *RobinHood) Slots() int { return len(t.keys) }
