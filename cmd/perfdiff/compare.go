package main

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/report"
)

// direction says which way a metric may drift before it counts as a
// regression, keyed by the unit declared in the table schema.
type direction int

const (
	neutral     direction = iota // no better/worse: never gated
	lowerBetter                  // latency, size, misses: up is bad
	higherBetter                 // throughput, speedup: down is bad
)

// unitDirection classifies every unit the experiment catalog emits.
// Unknown units are neutral: a new experiment's metrics stay ungated
// until a direction is added here, which is the safe default.
func unitDirection(unit string) direction {
	switch unit {
	case "ns", "us", "µs", "ms", "s", "B", "KB", "MB", "GB", "bytes",
		"misses/op", "instr/op":
		return lowerBetter
	case "x", "M/s", "k/s", "kops/s", "ops/s", "lookups/s", "keys/s":
		return higherBetter
	}
	return neutral
}

// Delta is one watched metric compared across the two documents.
type Delta struct {
	Key      string  // experiment/title/dims/metric, human-readable
	Unit     string
	Base     float64
	Current  float64
	Pct      float64 // signed change in the regression direction: positive = worse
	Regressed bool
}

// Result is a full document comparison.
type Result struct {
	Deltas      []Delta
	Regressions []Delta
	// OnlyBaseline and OnlyCurrent list row/metric keys present on one
	// side only; reported, never fatal.
	OnlyBaseline []string
	OnlyCurrent  []string
	Threshold    float64
}

// rowKey identifies a row across documents: the experiment, the table
// title, and the dimension values, joined unambiguously.
func rowKey(t *report.Table, r *report.Row) string {
	parts := append([]string{t.Experiment, t.Title}, r.Dims...)
	return strings.Join(parts, "\x1f")
}

// metricEntry is one gateable observation in a document.
type metricEntry struct {
	key  string // rowKey + metric name
	disp string // human-readable key for reports
	unit string
	dir  direction
	val  float64
}

// index flattens a document into its gateable metric entries.
func index(d *report.Document) map[string]metricEntry {
	out := make(map[string]metricEntry)
	for i := range d.Tables {
		t := &d.Tables[i]
		for j := range t.Rows {
			r := &t.Rows[j]
			rk := rowKey(t, r)
			for m, metric := range t.Schema.Metrics {
				dir := unitDirection(metric.Unit)
				if dir == neutral {
					continue
				}
				key := rk + "\x1f" + metric.Name
				disp := t.Experiment + ": " + strings.Join(r.Dims, "/") + " " + metric.Name
				out[key] = metricEntry{key: key, disp: disp, unit: metric.Unit, dir: dir, val: r.Metrics[m]}
			}
		}
	}
	return out
}

// Compare decodes both documents and gates every directional metric
// present in both. threshold is in percent: a lower-better metric
// regresses when current > base*(1+threshold/100), a higher-better
// metric when current < base*(1-threshold/100). Zero-valued baselines
// are skipped (no meaningful ratio).
func Compare(baseline, current []byte, threshold float64) (*Result, error) {
	bd, err := report.DecodeDocument(bytes.NewReader(baseline))
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	cd, err := report.DecodeDocument(bytes.NewReader(current))
	if err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	bi, ci := index(bd), index(cd)

	res := &Result{Threshold: threshold}
	for key, b := range bi {
		c, ok := ci[key]
		if !ok {
			res.OnlyBaseline = append(res.OnlyBaseline, b.disp)
			continue
		}
		if b.val == 0 {
			continue
		}
		// Positive pct always means "worse", whichever the direction.
		pct := (c.val - b.val) / b.val * 100
		if b.dir == higherBetter {
			pct = -pct
		}
		d := Delta{Key: b.disp, Unit: b.unit, Base: b.val, Current: c.val, Pct: pct, Regressed: pct > threshold}
		res.Deltas = append(res.Deltas, d)
		if d.Regressed {
			res.Regressions = append(res.Regressions, d)
		}
	}
	for key, c := range ci {
		if _, ok := bi[key]; !ok {
			res.OnlyCurrent = append(res.OnlyCurrent, c.disp)
		}
	}
	sort.Slice(res.Deltas, func(i, j int) bool { return res.Deltas[i].Pct > res.Deltas[j].Pct })
	sort.Slice(res.Regressions, func(i, j int) bool { return res.Regressions[i].Pct > res.Regressions[j].Pct })
	sort.Strings(res.OnlyBaseline)
	sort.Strings(res.OnlyCurrent)
	return res, nil
}

// Print renders the comparison, worst drift first.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "perfdiff: %d metric(s) compared, threshold %.0f%%\n", len(r.Deltas), r.Threshold)
	for _, d := range r.Deltas {
		status := "ok"
		if d.Regressed {
			status = "REGRESSED"
		}
		fmt.Fprintf(w, "  %-9s %+7.1f%%  %s: %.2f -> %.2f %s\n", status, d.Pct, d.Key, d.Base, d.Current, d.Unit)
	}
	for _, k := range r.OnlyBaseline {
		fmt.Fprintf(w, "  missing in current run (not gated): %s\n", k)
	}
	for _, k := range r.OnlyCurrent {
		fmt.Fprintf(w, "  new metric (not gated): %s\n", k)
	}
}
