package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLowerBoundBasic(t *testing.T) {
	keys := []Key{1, 3, 9, 12, 56, 57, 58, 95, 98, 99}
	tests := []struct {
		x    Key
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {9, 2}, {10, 3},
		{12, 3}, {13, 4}, {56, 4}, {57, 5}, {58, 6}, {59, 7},
		{72, 7}, // the paper's Figure 1 example: LB(72) is key 95 at index 7
		{95, 7}, {96, 8}, {98, 8}, {99, 9}, {100, 10}, {^Key(0), 10},
	}
	for _, tc := range tests {
		if got := LowerBound(keys, tc.x); got != tc.want {
			t.Errorf("LowerBound(%d) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestLowerBoundEmpty(t *testing.T) {
	if got := LowerBound(nil, 5); got != 0 {
		t.Errorf("LowerBound(nil, 5) = %d, want 0", got)
	}
}

func TestLowerBoundDuplicates(t *testing.T) {
	keys := []Key{2, 2, 2, 5, 5, 9}
	if got := LowerBound(keys, 2); got != 0 {
		t.Errorf("LowerBound(dups, 2) = %d, want 0 (first duplicate)", got)
	}
	if got := LowerBound(keys, 5); got != 3 {
		t.Errorf("LowerBound(dups, 5) = %d, want 3", got)
	}
	if got := LowerBound(keys, 3); got != 3 {
		t.Errorf("LowerBound(dups, 3) = %d, want 3", got)
	}
}

func TestLowerBoundMatchesSortSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(200)
		keys := make([]Key, n)
		for i := range keys {
			keys[i] = Key(rng.Intn(500))
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for q := 0; q < 50; q++ {
			x := Key(rng.Intn(600))
			want := sort.Search(n, func(i int) bool { return keys[i] >= x })
			if got := LowerBound(keys, x); got != want {
				t.Fatalf("trial %d: LowerBound(%d) = %d, want %d (keys=%v)", trial, x, got, want, keys)
			}
		}
	}
}

func TestLowerBound32MatchesSortSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(100)
		keys := make([]Key32, n)
		for i := range keys {
			keys[i] = Key32(rng.Intn(300))
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for q := 0; q < 30; q++ {
			x := Key32(rng.Intn(400))
			want := sort.Search(n, func(i int) bool { return keys[i] >= x })
			if got := LowerBound32(keys, x); got != want {
				t.Fatalf("LowerBound32(%d) = %d, want %d", x, got, want)
			}
		}
	}
}

func TestValidBound(t *testing.T) {
	keys := []Key{10, 20, 30, 40, 50}
	cases := []struct {
		x    Key
		b    Bound
		want bool
	}{
		{25, Bound{0, 5}, true},   // full bound is always valid
		{25, Bound{2, 3}, true},   // exact
		{25, Bound{1, 4}, true},   // contains
		{25, Bound{3, 5}, false},  // misses lower bound (lb=2)
		{25, Bound{0, 2}, false},  // ends before lower bound
		{25, Bound{-1, 3}, false}, // out of range
		{25, Bound{2, 6}, false},  // beyond array
		{25, Bound{3, 2}, false},  // inverted
		{5, Bound{0, 1}, true},    // lb = 0
		{60, Bound{4, 5}, true},   // lb = n, any bound touching Hi=n
		{60, Bound{5, 5}, true},   // empty bound at end is accepted for overflow keys
		{60, Bound{0, 4}, false},  // does not reach the end
		{10, Bound{0, 1}, true},
		{50, Bound{4, 5}, true},
		{50, Bound{0, 4}, false},
	}
	for _, tc := range cases {
		if got := ValidBound(keys, tc.x, tc.b); got != tc.want {
			t.Errorf("ValidBound(x=%d, b=%v) = %v, want %v", tc.x, tc.b, got, tc.want)
		}
	}
}

func TestBoundClamp(t *testing.T) {
	cases := []struct {
		in   Bound
		n    int
		want Bound
	}{
		{Bound{-5, 3}, 10, Bound{0, 3}},
		{Bound{2, 15}, 10, Bound{2, 10}},
		{Bound{-2, 20}, 10, Bound{0, 10}},
		{Bound{5, 3}, 10, Bound{3, 3}},
		{Bound{12, 20}, 10, Bound{10, 10}},
	}
	for _, tc := range cases {
		if got := tc.in.Clamp(tc.n); got != tc.want {
			t.Errorf("%v.Clamp(%d) = %v, want %v", tc.in, tc.n, got, tc.want)
		}
	}
}

func TestBoundWidthAndString(t *testing.T) {
	b := Bound{3, 9}
	if b.Width() != 6 {
		t.Errorf("Width = %d, want 6", b.Width())
	}
	if b.String() != "[3,9)" {
		t.Errorf("String = %q", b.String())
	}
}

func TestBoundAround(t *testing.T) {
	cases := []struct {
		pos, errLo, errHi, n int
		want                 Bound
	}{
		{50, 5, 5, 100, Bound{45, 56}},
		{2, 5, 5, 100, Bound{0, 8}},
		{98, 5, 5, 100, Bound{93, 100}},
		{0, 0, 0, 100, Bound{0, 1}},
		{99, 0, 0, 100, Bound{99, 100}},
		{150, 5, 5, 100, Bound{100, 100}}, // predicted past the end
		{-10, 5, 5, 100, Bound{0, 0}},     // hi clamps to 0 via lo>hi rule? lo=0,hi=-4 -> lo=0,hi->-4 then clamp
	}
	for _, tc := range cases {
		got := BoundAround(tc.pos, tc.errLo, tc.errHi, tc.n)
		if got.Lo < 0 || got.Hi > tc.n || got.Lo > got.Hi {
			t.Errorf("BoundAround(%d,%d,%d,%d) = %v not clamped", tc.pos, tc.errLo, tc.errHi, tc.n, got)
		}
		if tc.pos >= 0 && tc.pos < tc.n && got != tc.want {
			t.Errorf("BoundAround(%d,%d,%d,%d) = %v, want %v", tc.pos, tc.errLo, tc.errHi, tc.n, got, tc.want)
		}
	}
}

// Property: BoundAround always contains pos when pos is in range, and is
// always clamped.
func TestBoundAroundProperty(t *testing.T) {
	f := func(pos int16, errLo, errHi uint8, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		b := BoundAround(int(pos), int(errLo), int(errHi), n)
		if b.Lo < 0 || b.Hi > n || b.Lo > b.Hi {
			return false
		}
		if int(pos) >= 0 && int(pos) < n {
			return b.Lo <= int(pos) && int(pos) < b.Hi
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: LowerBound result always brackets correctly: keys[i-1] < x <= keys[i].
func TestLowerBoundProperty(t *testing.T) {
	f := func(raw []uint64, x uint64) bool {
		keys := make([]Key, len(raw))
		copy(keys, raw)
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		i := LowerBound(keys, x)
		if i > 0 && keys[i-1] >= x {
			return false
		}
		if i < len(keys) && keys[i] < x {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted(nil) {
		t.Error("nil should be sorted")
	}
	if !IsSorted([]Key{5}) {
		t.Error("single element should be sorted")
	}
	if !IsSorted([]Key{1, 1, 2, 3}) {
		t.Error("duplicates should be sorted")
	}
	if IsSorted([]Key{2, 1}) {
		t.Error("descending should not be sorted")
	}
}

func TestFullBound(t *testing.T) {
	keys := []Key{1, 2, 3}
	b := FullBound(len(keys))
	for x := Key(0); x < 5; x++ {
		if !ValidBound(keys, x, b) {
			t.Errorf("FullBound invalid for x=%d", x)
		}
	}
}
