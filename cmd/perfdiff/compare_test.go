package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/report"
)

// doc builds a JSON document with the serve experiment's shape: one
// latency metric (lower better), one throughput metric (higher
// better), and one neutral statistical metric that must never gate.
func doc(t *testing.T, batchedNS, mps, beta float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := report.NewJSON(&buf)
	tbl := report.New("serve", "Serving layer: Table batched lookups").
		Dims("family", "n").
		Float("batched(ns)", "ns", 1).
		Float("Mlookups/s", "M/s", 2).
		Float("std", "beta", 3).
		Row([]string{"RMI", "1000000"}, batchedNS, mps, beta)
	if err := sink.Table(tbl); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(report.NewMeta("test")); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIdenticalDocumentsPass is the steady-state contract: a run
// compared against itself never trips the gate.
func TestIdenticalDocumentsPass(t *testing.T) {
	d := doc(t, 100, 10, 0.5)
	res, err := Compare(d, d, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("identical documents regressed: %+v", res.Regressions)
	}
	if len(res.Deltas) != 2 {
		t.Fatalf("expected 2 gated metrics (ns + M/s, beta neutral), got %d", len(res.Deltas))
	}
}

// TestInjectedRegressionFails proves the gate actually fires: a 2x
// latency injection and a halved throughput must both regress at the
// default threshold, while the neutral metric stays silent however
// far it drifts.
func TestInjectedRegressionFails(t *testing.T) {
	base := doc(t, 100, 10, 0.5)
	bad := doc(t, 200, 5, 99) // latency doubled, throughput halved, beta wild
	res, err := Compare(base, bad, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 2 {
		t.Fatalf("expected 2 regressions, got %d: %+v", len(res.Regressions), res.Regressions)
	}
	// Worst first: latency +100% ahead of throughput +100%? Both are
	// +100% in regression direction; just check both keys are present.
	var keys []string
	for _, d := range res.Regressions {
		keys = append(keys, d.Key)
	}
	joined := strings.Join(keys, "\n")
	if !strings.Contains(joined, "batched(ns)") || !strings.Contains(joined, "Mlookups/s") {
		t.Fatalf("unexpected regression keys: %v", keys)
	}
}

// TestImprovementAndJitterPass covers the direction logic: faster
// latency and higher throughput are improvements, and drift inside the
// threshold is jitter, not regression.
func TestImprovementAndJitterPass(t *testing.T) {
	base := doc(t, 100, 10, 0.5)
	better := doc(t, 50, 20, 0.5)
	res, err := Compare(base, better, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", res.Regressions)
	}
	jitter := doc(t, 130, 8, 0.5) // +30% latency, -20% throughput: inside 40%
	res, err = Compare(base, jitter, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("within-threshold jitter flagged: %+v", res.Regressions)
	}
	// But the same drift trips a tighter gate.
	res, err = Compare(base, jitter, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 {
		t.Fatalf("expected the 30%% latency drift to trip a 25%% gate: %+v", res.Regressions)
	}
}

// TestMissingRowsWarnNotFail: catalog drift (rows on one side only)
// is reported but never fatal.
func TestMissingRowsWarnNotFail(t *testing.T) {
	base := doc(t, 100, 10, 0.5)
	var buf bytes.Buffer
	sink := report.NewJSON(&buf)
	tbl := report.New("serve", "Serving layer: Table batched lookups").
		Dims("family", "n").
		Float("batched(ns)", "ns", 1).
		Row([]string{"PGM", "1000000"}, 80) // different dims, different metric set
	if err := sink.Table(tbl); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(report.NewMeta("test")); err != nil {
		t.Fatal(err)
	}
	res, err := Compare(base, buf.Bytes(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 || len(res.Deltas) != 0 {
		t.Fatalf("disjoint documents must not gate: %+v", res)
	}
	if len(res.OnlyBaseline) != 2 || len(res.OnlyCurrent) != 1 {
		t.Fatalf("expected 2 baseline-only and 1 current-only, got %d/%d",
			len(res.OnlyBaseline), len(res.OnlyCurrent))
	}
}

// TestZeroBaselineSkipped: a zero baseline value has no meaningful
// ratio and must be skipped rather than divide by zero.
func TestZeroBaselineSkipped(t *testing.T) {
	base := doc(t, 0, 10, 0.5)
	cur := doc(t, 100, 10, 0.5)
	res, err := Compare(base, cur, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Deltas {
		if strings.Contains(d.Key, "batched(ns)") {
			t.Fatalf("zero-baseline metric was gated: %+v", d)
		}
	}
}

// TestUnitDirections pins the classification of every unit the
// experiment catalog currently emits.
func TestUnitDirections(t *testing.T) {
	lower := []string{"ns", "us", "µs", "ms", "s", "B", "MB", "misses/op", "instr/op"}
	higher := []string{"x", "M/s", "k/s", "kops/s", "ops/s"}
	neutralU := []string{"", "beta", "log2", "norm", "frac", "%", "entries", "compactions", "no-such-unit"}
	for _, u := range lower {
		if unitDirection(u) != lowerBetter {
			t.Errorf("unit %q: want lowerBetter", u)
		}
	}
	for _, u := range higher {
		if unitDirection(u) != higherBetter {
			t.Errorf("unit %q: want higherBetter", u)
		}
	}
	for _, u := range neutralU {
		if unitDirection(u) != neutral {
			t.Errorf("unit %q: want neutral", u)
		}
	}
}
