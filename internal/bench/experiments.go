package bench

import (
	"strconv"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fast"
	"repro/internal/hashidx"
	"repro/internal/perfsim"
	"repro/internal/pgm"
	"repro/internal/rbs"
	"repro/internal/registry"
	"repro/internal/report"
	"repro/internal/rmi"
	"repro/internal/rs"
	"repro/internal/search"
	"repro/internal/stats"

	artpkg "repro/internal/art"
)

// The paper's experiments, registered in figure order. Each returns
// typed report.Tables; rendering belongs to the report sinks.
func init() {
	Register(Experiment{"table1", "capability matrix", table1})
	Register(Experiment{"fig6", "dataset CDFs", fig6})
	Register(Experiment{"fig7", "Pareto size/performance sweep, 4 datasets", fig7})
	Register(Experiment{"fig8", "string structures (FST, Wormhole) on integers", fig8})
	Register(Experiment{"table2", "fastest variants vs hash tables", table2})
	Register(Experiment{"fig9", "dataset size scaling 1x..4x", fig9})
	Register(Experiment{"fig10", "32-bit vs 64-bit keys", fig10})
	Register(Experiment{"fig11", "last-mile search functions", fig11})
	Register(Experiment{"fig12", "lookup time vs explanatory metrics", fig12})
	Register(Experiment{"regress", "Section 4.3 OLS analysis", regress})
	Register(Experiment{"fig13", "size vs log2 error (compression view)", fig13})
	Register(Experiment{"fig14", "warm vs cold cache", fig14})
	Register(Experiment{"fig15", "memory-fence (serialized) lookups", fig15})
	Register(Experiment{"fig16a", "threads vs throughput", fig16a})
	Register(Experiment{"fig16b", "size vs throughput at max threads", fig16b})
	Register(Experiment{"fig16c", "cache misses per lookup per second", fig16c})
	Register(Experiment{"fig17", "build times at 1x..4x scale", fig17})
}

// table1 reports the capability matrix of Table 1 (static facts about
// the implemented structures).
func table1(r *Run) ([]report.Table, error) {
	t := report.New("table1", "Table 1: search techniques evaluated").
		Dims("Method", "Updates", "Ordered", "Type")
	rows := [][4]string{
		{"PGM", "Yes", "Yes", "Learned"},
		{"RS", "No", "Yes", "Learned"},
		{"RMI", "No", "Yes", "Learned"},
		{"BTree", "Yes", "Yes", "Tree"},
		{"IBTree", "Yes", "Yes", "Tree"},
		{"FAST", "No", "Yes", "Tree"},
		{"ART", "Yes", "Yes", "Trie"},
		{"FST", "No", "Yes", "Trie"},
		{"Wormhole", "Yes", "Yes", "Hybrid hash/trie"},
		{"CuckooMap", "Yes", "No", "Hash"},
		{"RobinHash", "Yes", "No", "Hash"},
		{"RBS", "No", "Yes", "Lookup table"},
		{"BS", "No", "Yes", "Binary search"},
	}
	for _, row := range rows {
		if r.FamilyAllowed(row[0]) {
			t.Row([]string{row[0], row[1], row[2], row[3]})
		}
	}
	return []report.Table{*t}, nil
}

// fig6 reports CDF samples for each dataset (Figure 6).
func fig6(r *Run) ([]report.Table, error) {
	t := report.New("fig6", "Figure 6: dataset CDFs (normalized key -> relative position)").
		Dims("data").
		Float("key", "norm", 3).
		Float("cdf", "frac", 3)
	for _, name := range r.Datasets(dataset.All()) {
		e, err := r.Env(name)
		if err != nil {
			return nil, err
		}
		xs, ys := dataset.CDF(e.Keys, 21)
		minK, maxK := float64(xs[0]), float64(xs[len(xs)-1])
		for i := range xs {
			nk := 0.0
			if maxK > minK {
				nk = (float64(xs[i]) - minK) / (maxK - minK)
			}
			t.Row([]string{string(name)}, nk, ys[i])
		}
	}
	return []report.Table{*t}, nil
}

// paretoSchema is the shared shape of the size-vs-latency sweeps.
func paretoSchema(experiment, title string) *report.Table {
	return report.New(experiment, title).
		Dims("data", "index", "config").
		Float("size(MB)", "MB", 4).
		Float("ns/lookup", "ns", 1)
}

// fig7 reports the Pareto sweep of Figure 7: size vs warm lookup time
// for every structure family on every dataset, plus the BS baseline.
func fig7(r *Run) ([]report.Table, error) {
	t := paretoSchema("fig7", "Figure 7: performance/size tradeoffs (warm cache, tight loop)").
		Notef("BS rows are the size-0 binary-search baseline")
	for _, name := range r.Datasets(dataset.All()) {
		e, err := r.Env(name)
		if err != nil {
			return nil, err
		}
		if r.FamilyAllowed("BS") {
			bs := MeasureWarm(e, mustBS(e), search.BinarySearch)
			t.Row([]string{string(name), "BS", ""}, 0, bs.NsPerLookup)
		}
		for _, family := range r.Families(registry.ParetoFamilies) {
			for _, nb := range registry.Sweep(family, e.Keys) {
				idx, err := nb.Builder.Build(e.Keys)
				if err != nil {
					continue
				}
				m := MeasureWarm(e, idx, search.BinarySearch)
				t.Row([]string{string(name), family, nb.Label}, MB(idx.SizeBytes()), m.NsPerLookup)
			}
		}
	}
	return []report.Table{*t}, nil
}

// fig8 reports the string-structure comparison of Figure 8 on amzn and
// face: FST and Wormhole against RMI and BTree.
func fig8(r *Run) ([]report.Table, error) {
	t := paretoSchema("fig8", "Figure 8: structures designed for strings, on integer keys").
		Notef("BS rows are the size-0 binary-search baseline")
	for _, name := range r.Datasets([]dataset.Name{dataset.Amzn, dataset.Face}) {
		e, err := r.Env(name)
		if err != nil {
			return nil, err
		}
		if r.FamilyAllowed("BS") {
			bs := MeasureWarm(e, mustBS(e), search.BinarySearch)
			t.Row([]string{string(name), "BS", ""}, 0, bs.NsPerLookup)
		}
		for _, family := range r.Families(registry.StringFamilies) {
			for _, nb := range registry.Sweep(family, e.Keys) {
				idx, err := nb.Builder.Build(e.Keys)
				if err != nil {
					continue
				}
				m := MeasureWarm(e, idx, search.BinarySearch)
				t.Row([]string{string(name), family, nb.Label}, MB(idx.SizeBytes()), m.NsPerLookup)
			}
		}
	}
	return []report.Table{*t}, nil
}

// table2 reports the fastest variant of each structure against the
// two hashing techniques on amzn (Table 2).
func table2(r *Run) ([]report.Table, error) {
	e, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	t := report.New("table2", "Table 2: fastest variant of each index vs hashing (amzn)").
		Dims("Method", "config").
		Float("ns/lookup", "ns", 1).
		Float("size(MB)", "MB", 4)
	for _, family := range r.Families(registry.Table2Families) {
		nb, idx, ns := BestVariant(e, family, func(e *Env, idx core.Index) float64 {
			return MeasureWarm(e, idx, search.BinarySearch).NsPerLookup
		})
		if idx == nil {
			continue
		}
		t.Row([]string{family, nb.Label}, ns, MB(idx.SizeBytes()))
	}
	return []report.Table{*t}, nil
}

// fig9 reports the dataset-size scaling of Figure 9: amzn at 1x..4x.
func fig9(r *Run) ([]report.Table, error) {
	o := r.Options
	t := report.New("fig9", "Figure 9: performance/size across dataset sizes (amzn)").
		Dims("keys", "index", "config").
		Float("size(MB)", "MB", 4).
		Float("ns/lookup", "ns", 1)
	for mult := 1; mult <= 4; mult++ {
		e, err := r.EnvAt(dataset.Amzn, o.N*mult, o.Lookups)
		if err != nil {
			return nil, err
		}
		for _, family := range r.Families([]string{"RMI", "PGM", "RS", "BTree"}) {
			for _, nb := range registry.Sweep(family, e.Keys) {
				idx, err := nb.Builder.Build(e.Keys)
				if err != nil {
					continue
				}
				m := MeasureWarm(e, idx, search.BinarySearch)
				t.Row([]string{strconv.Itoa(o.N * mult), family, nb.Label},
					MB(idx.SizeBytes()), m.NsPerLookup)
			}
		}
	}
	return []report.Table{*t}, nil
}

// fig10 reports the 32-bit vs 64-bit key comparison of Figure 10 on
// amzn. Learned structures run on rank-preserving 32-bit rescalings
// widened back to uint64 (the paper's RMI/RS implementations widen to
// float64 anyway); BTree and FAST additionally run native 32-bit
// instantiations where key packing matters architecturally.
func fig10(r *Run) ([]report.Table, error) {
	o := r.Options
	e64, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	k32 := dataset.To32(e64.Keys)
	widened := make([]core.Key, len(k32))
	for i, k := range k32 {
		widened[i] = core.Key(k)
	}
	e32 := &Env{Dataset: "amzn32", Keys: widened, Payloads: e64.Payloads,
		Lookups: dataset.Lookups(widened, o.Lookups, o.Seed)}

	t := report.New("fig10", "Figure 10: 32-bit vs 64-bit keys (amzn)").
		Dims("index", "bits", "config").
		Float("size(MB)", "MB", 4).
		Float("ns/lookup", "ns", 1)
	families := r.Families([]string{"RMI", "RS", "PGM", "BTree", "FAST"})
	for _, family := range families {
		for _, nb := range registry.Sweep(family, e64.Keys) {
			idx, err := nb.Builder.Build(e64.Keys)
			if err != nil {
				continue
			}
			m := MeasureWarm(e64, idx, search.BinarySearch)
			t.Row([]string{family, "64", nb.Label}, MB(idx.SizeBytes()), m.NsPerLookup)
		}
		for _, nb := range registry.Sweep(family, e32.Keys) {
			idx, err := nb.Builder.Build(e32.Keys)
			if err != nil {
				continue
			}
			m := MeasureWarm(e32, idx, search.BinarySearch)
			size := idx.SizeBytes()
			if family == "BTree" || family == "FAST" {
				// Native 32-bit trees halve key storage; report the
				// native footprint measured below.
				size = native32Size(family, k32)
			}
			t.Row([]string{family, "32", nb.Label}, MB(size), m.NsPerLookup)
		}
	}
	// Native 32-bit lookup loops for the tree structures.
	native := report.New("fig10", "Figure 10 (cont.): native 32-bit tree loops (Ceiling only)").
		Dims("index").
		Float("ns/op", "ns", 1)
	if r.FamilyAllowed("BTree") {
		native.Row([]string{"BTree32"}, native32BTreeNs(k32, e32))
	}
	if r.FamilyAllowed("FAST") {
		native.Row([]string{"FAST32"}, native32FASTNs(k32, e32))
	}
	return []report.Table{*t, *native}, nil
}

func native32Size(family string, k32 []core.Key32) int {
	switch family {
	case "BTree":
		vals := make([]int32, len(k32))
		for i := range vals {
			vals[i] = int32(i)
		}
		t, err := btree.NewTree(k32, vals, false)
		if err != nil {
			return 0
		}
		return t.SizeBytes()
	case "FAST":
		t, err := fast.NewTree(k32)
		if err != nil {
			return 0
		}
		return t.SizeBytes()
	}
	return 0
}

func native32BTreeNs(k32 []core.Key32, e *Env) float64 {
	vals := make([]int32, len(k32))
	for i := range vals {
		vals[i] = int32(i)
	}
	t, err := btree.NewTree(k32, vals, false)
	if err != nil {
		return 0
	}
	lookups := make([]core.Key32, len(e.Lookups))
	for i, x := range e.Lookups {
		lookups[i] = core.Key32(x)
	}
	var sum int64
	start := time.Now()
	for _, x := range lookups {
		v, found, _, _ := t.Ceiling(x)
		if found {
			sum += int64(v)
		}
	}
	elapsed := time.Since(start)
	_ = sum
	return float64(elapsed.Nanoseconds()) / float64(len(lookups))
}

func native32FASTNs(k32 []core.Key32, e *Env) float64 {
	t, err := fast.NewTree(k32)
	if err != nil {
		return 0
	}
	lookups := make([]core.Key32, len(e.Lookups))
	for i, x := range e.Lookups {
		lookups[i] = core.Key32(x)
	}
	var sum int
	start := time.Now()
	for _, x := range lookups {
		sum += t.Ceiling(x)
	}
	elapsed := time.Since(start)
	_ = sum
	return float64(elapsed.Nanoseconds()) / float64(len(lookups))
}

// fig11 reports the last-mile search comparison of Figure 11: binary,
// linear and interpolation search for each learned structure on amzn
// and osm.
func fig11(r *Run) ([]report.Table, error) {
	t := report.New("fig11", "Figure 11: last-mile search functions").
		Dims("data", "index", "config", "search").
		Float("ns/lookup", "ns", 1)
	for _, name := range r.Datasets([]dataset.Name{dataset.Amzn, dataset.OSM}) {
		e, err := r.Env(name)
		if err != nil {
			return nil, err
		}
		for _, family := range r.Families([]string{"RMI", "PGM", "RS", "RBS"}) {
			for _, nb := range registry.Sweep(family, e.Keys) {
				idx, err := nb.Builder.Build(e.Keys)
				if err != nil {
					continue
				}
				for _, kind := range []search.Kind{search.Binary, search.Linear, search.Interpolation} {
					m := MeasureWarm(e, idx, search.ByKind(kind))
					t.Row([]string{string(name), family, nb.Label, kind.String()}, m.NsPerLookup)
				}
			}
		}
	}
	return []report.Table{*t}, nil
}

// CounterRow is one structure+configuration sample of Figure 12 /
// Section 4.3: measured lookup latency alongside simulated counters.
type CounterRow struct {
	Dataset      dataset.Name
	Family       string
	Label        string
	SizeMB       float64
	Log2Err      float64
	NsPerLookup  float64
	CacheMisses  float64
	BranchMisses float64
	Instructions float64
}

// CollectCounters measures warm lookup latency and simulated counters
// for every configuration of the given families on a dataset.
func CollectCounters(o Options, name dataset.Name, families []string) ([]CounterRow, error) {
	o = o.withDefaults()
	e, err := NewEnv(name, o.N, o.Lookups, o.Seed)
	if err != nil {
		return nil, err
	}
	return countersFromEnv(e, families), nil
}

// countersFromEnv is CollectCounters over an existing environment —
// the catalog experiments build theirs through Run.EnvAt so dataset
// checksums land in the run metadata.
func countersFromEnv(e *Env, families []string) []CounterRow {
	var rows []CounterRow
	for _, family := range families {
		for _, nb := range registry.Sweep(family, e.Keys) {
			idx, err := nb.Builder.Build(e.Keys)
			if err != nil {
				continue
			}
			tr, m := traceFor(family, idx, e)
			if tr == nil {
				continue
			}
			meas := measureWarmBest(e, idx, 3)
			// Warm the simulated cache, then measure.
			for _, x := range e.Lookups {
				tr.Lookup(x)
			}
			m.ResetCounters()
			for _, x := range e.Lookups {
				tr.Lookup(x)
			}
			c := m.Counters()
			nl := float64(len(e.Lookups))
			rows = append(rows, CounterRow{
				Dataset:      e.Dataset,
				Family:       family,
				Label:        nb.Label,
				SizeMB:       MB(idx.SizeBytes()),
				Log2Err:      AvgLog2Width(e, idx),
				NsPerLookup:  meas.NsPerLookup,
				CacheMisses:  float64(c.CacheMisses) / nl,
				BranchMisses: float64(c.BranchMisses) / nl,
				Instructions: float64(c.Instructions) / nl,
			})
		}
	}
	return rows
}

// traceFor wires a built index into a fresh simulated machine. The
// simulated cache is sized relative to the data so the paper's regime
// (working set far larger than the LLC) holds at laptop scale: one
// byte of cache per key keeps the ratio near the paper's 3.2 GB data
// to 27.5 MB LLC.
func traceFor(family string, idx core.Index, e *Env) (perfsim.Traced, *perfsim.Machine) {
	cache := len(e.Keys)
	if cache < 128<<10 {
		cache = 128 << 10
	}
	if cache > 4<<20 {
		cache = 4 << 20
	}
	m := perfsim.New(perfsim.Config{CacheBytes: cache})
	switch v := idx.(type) {
	case *rmi.Index:
		return perfsim.NewTracedRMI(v, m, e.Keys), m
	case *pgm.Index:
		return perfsim.NewTracedPGM(v, m, e.Keys), m
	case *rs.Index:
		return perfsim.NewTracedRS(v, m, e.Keys), m
	case *rbs.Index:
		return perfsim.NewTracedRBS(v, m, e.Keys), m
	case *btree.Index:
		return perfsim.NewTracedBTree(v, m, e.Keys), m
	case *artpkg.Index:
		return perfsim.NewTracedART(v, m, e.Keys), m
	case *fast.Index:
		return perfsim.NewTracedFAST(v, m, e.Keys), m
	}
	if family == "RobinHash" {
		tbl, err := hashidx.NewRobinHood(len(e.Keys), 0.25)
		if err != nil {
			return nil, nil
		}
		for i, k := range e.Keys {
			tbl.Insert(k, int32(i))
		}
		return perfsim.NewTracedRobin(tbl, m, e.Keys), m
	}
	return nil, nil
}

// counterTable renders CounterRows into the Figure 12 table shape.
func counterTable(t *report.Table, rows []CounterRow) {
	for _, cr := range rows {
		t.Row([]string{string(cr.Dataset), cr.Family, cr.Label},
			cr.SizeMB, cr.Log2Err, cr.NsPerLookup,
			cr.CacheMisses, cr.BranchMisses, cr.Instructions)
	}
}

// fig12 reports lookup time against each candidate explanatory metric
// (Figure 12) for amzn and osm.
func fig12(r *Run) ([]report.Table, error) {
	t := report.New("fig12", "Figure 12: lookup time vs candidate explanatory metrics").
		Dims("data", "index", "config").
		Float("size(MB)", "MB", 4).
		Float("log2err", "log2", 2).
		Float("ns/lookup", "ns", 1).
		Float("c-miss", "misses/op", 2).
		Float("br-miss", "misses/op", 2).
		Float("instr", "instr/op", 1)
	for _, name := range r.Datasets([]dataset.Name{dataset.Amzn, dataset.OSM}) {
		e, err := r.Env(name)
		if err != nil {
			return nil, err
		}
		counterTable(t, countersFromEnv(e, r.Families(registry.Fig12Families)))
	}
	return []report.Table{*t}, nil
}

// measureWarmBest returns the fastest of reps warm measurements,
// suppressing scheduler noise for the regression analysis.
func measureWarmBest(e *Env, idx core.Index, reps int) Measurement {
	best := MeasureWarm(e, idx, search.BinarySearch)
	for r := 1; r < reps; r++ {
		if m := MeasureWarm(e, idx, search.BinarySearch); m.NsPerLookup < best.NsPerLookup {
			best = m
		}
	}
	return best
}

// regress runs the Section 4.3 analysis: an OLS of lookup time on
// cache misses, branch misses and instruction count across every
// structure and dataset, and a second model adding size and log2
// error to confirm they add no significant explanatory power.
//
// The paper's R² ≈ 0.95 arises in a memory-bound regime (200M keys vs
// a 27 MB LLC); the dataset size is floored here so the working set
// exceeds the host LLC, otherwise lookup latency decouples from memory
// behaviour and the regression degenerates.
func regress(r *Run) ([]report.Table, error) {
	o := r.Options
	if o.N < 2_000_000 {
		o.N = 2_000_000
	}
	if o.Lookups < 100_000 {
		o.Lookups = 100_000
	}
	var rows []CounterRow
	for _, name := range r.Datasets(dataset.All()) {
		// EnvAt (not CollectCounters) so the floored scale and its
		// dataset checksums are recorded in the run metadata.
		e, err := r.EnvAt(name, o.N, o.Lookups)
		if err != nil {
			return nil, err
		}
		rows = append(rows, countersFromEnv(e, r.Families(registry.Fig12Families))...)
	}
	y := make([]float64, len(rows))
	cm := make([]float64, len(rows))
	bm := make([]float64, len(rows))
	in := make([]float64, len(rows))
	sz := make([]float64, len(rows))
	le := make([]float64, len(rows))
	for i, cr := range rows {
		y[i] = cr.NsPerLookup
		cm[i] = cr.CacheMisses
		bm[i] = cr.BranchMisses
		in[i] = cr.Instructions
		sz[i] = cr.SizeMB
		le[i] = cr.Log2Err
	}
	t := report.New("regress", "Section 4.3 regression: lookup time ~ cache misses + branch misses + instructions").
		Dims("model", "term").
		Float("coef", "", 4).
		Float("std", "beta", 3).
		Float("p", "", 4)
	reg, err := stats.OLS(y, []string{"cache_misses", "branch_misses", "instructions"}, cm, bm, in)
	if err != nil {
		return nil, err
	}
	regressRows(t, "counters", reg)
	reg2, err := stats.OLS(y, []string{"cache_misses", "branch_misses", "instructions", "size_mb", "log2_err"},
		cm, bm, in, sz, le)
	if err != nil {
		return nil, err
	}
	regressRows(t, "extended", reg2)
	t.Notef("extended model adds size and log2 error to confirm they carry no extra explanatory power")
	t.Notef("measured at n=%d, lookups=%d (floored so the working set exceeds the LLC; see doc comment)", o.N, o.Lookups)
	return []report.Table{*t}, nil
}

// regressRows appends one fitted model's terms and its fit summary.
func regressRows(t *report.Table, model string, reg *stats.Regression) {
	for j, name := range reg.Names {
		t.Row([]string{model, name}, reg.Coef[j+1], reg.StdCoef[j], reg.PValues[j])
	}
	t.Notef("%s: R²=%.3f n=%d df=%d", model, reg.R2, reg.N, reg.DF)
}

// fig13 reports the compression view of Figure 13: size vs log2 error
// for the learned structures and the BTree.
func fig13(r *Run) ([]report.Table, error) {
	t := report.New("fig13", "Figure 13: size vs log2 error (learned indexes as compression)").
		Dims("data", "index", "config").
		Float("size(MB)", "MB", 4).
		Float("log2err", "log2", 2)
	for _, name := range r.Datasets([]dataset.Name{dataset.Amzn, dataset.OSM}) {
		e, err := r.Env(name)
		if err != nil {
			return nil, err
		}
		for _, family := range r.Families([]string{"RS", "RMI", "PGM", "BTree"}) {
			for _, nb := range registry.Sweep(family, e.Keys) {
				idx, err := nb.Builder.Build(e.Keys)
				if err != nil {
					continue
				}
				t.Row([]string{string(name), family, nb.Label},
					MB(idx.SizeBytes()), AvgLog2Width(e, idx))
			}
		}
	}
	return []report.Table{*t}, nil
}

// fig14 reports the warm/cold cache comparison of Figure 14 on amzn.
func fig14(r *Run) ([]report.Table, error) {
	e, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	coldOps := r.Options.Lookups / 20
	if coldOps < 50 {
		coldOps = 50
	}
	t := report.New("fig14", "Figure 14: warm vs cold cache (amzn)").
		Dims("index", "config").
		Float("size(MB)", "MB", 4).
		Float("warm(ns)", "ns", 1).
		Float("cold(ns)", "ns", 1)
	for _, family := range r.Families([]string{"RMI", "RS", "PGM", "BTree", "FAST"}) {
		for _, nb := range registry.Sweep(family, e.Keys) {
			idx, err := nb.Builder.Build(e.Keys)
			if err != nil {
				continue
			}
			warm := MeasureWarm(e, idx, search.BinarySearch)
			cold := MeasureCold(e, idx, search.BinarySearch, coldOps)
			t.Row([]string{family, nb.Label},
				MB(idx.SizeBytes()), warm.NsPerLookup, cold.NsPerLookup)
		}
	}
	return []report.Table{*t}, nil
}

// fig15 reports the fence comparison of Figure 15 on amzn.
func fig15(r *Run) ([]report.Table, error) {
	e, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	t := report.New("fig15", "Figure 15: serialized (\"fenced\") vs pipelined lookups (amzn)").
		Dims("index", "config").
		Float("size(MB)", "MB", 4).
		Float("no-fence", "ns", 1).
		Float("fence", "ns", 1)
	for _, family := range r.Families([]string{"RMI", "RS", "PGM", "BTree", "FAST"}) {
		for _, nb := range registry.Sweep(family, e.Keys) {
			idx, err := nb.Builder.Build(e.Keys)
			if err != nil {
				continue
			}
			plain := MeasureWarm(e, idx, search.BinarySearch)
			fenced := MeasureFenced(e, idx, search.BinarySearch)
			t.Row([]string{family, nb.Label},
				MB(idx.SizeBytes()), plain.NsPerLookup, fenced.NsPerLookup)
		}
	}
	return []report.Table{*t}, nil
}

// fig16a reports multithreaded throughput against thread count, with
// and without the serialized loop, at a mid-size configuration.
func fig16a(r *Run) ([]report.Table, error) {
	e, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	t := report.New("fig16a", "Figure 16a: threads vs throughput (amzn, mid-size configs)").
		Dims("index", "threads").
		Float("Mlookups/s", "M/s", 2).
		Float("Mlookups/s(fence)", "M/s", 2)
	for _, family := range r.Families(registry.Fig16Families) {
		idx := midVariant(e, family)
		if idx == nil {
			continue
		}
		for _, threads := range MaxThreads() {
			plain := MeasureThroughput(e, idx, search.BinarySearch, threads, false)
			fenced := MeasureThroughput(e, idx, search.BinarySearch, threads, true)
			t.Row([]string{family, strconv.Itoa(threads)}, plain/1e6, fenced/1e6)
		}
	}
	return []report.Table{*t}, nil
}

// midVariant picks the middle configuration of a family's sweep (the
// paper fixes ~50MB models for Figure 16a).
func midVariant(e *Env, family string) core.Index {
	sweep := registry.Sweep(family, e.Keys)
	if len(sweep) == 0 {
		return nil
	}
	nb := sweep[len(sweep)/2]
	idx, err := nb.Builder.Build(e.Keys)
	if err != nil {
		return nil
	}
	return idx
}

// fig16b reports size vs max-thread throughput.
func fig16b(r *Run) ([]report.Table, error) {
	e, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	threads := MaxThreads()
	maxT := threads[len(threads)-1]
	t := report.New("fig16b", "Figure 16b: size vs throughput at max threads (amzn)").
		Dims("index", "config").
		Float("size(MB)", "MB", 4).
		Float("Mlookups/s", "M/s", 2)
	for _, family := range r.Families([]string{"RMI", "PGM", "RS", "BTree", "ART"}) {
		for _, nb := range registry.Sweep(family, e.Keys) {
			idx, err := nb.Builder.Build(e.Keys)
			if err != nil {
				continue
			}
			tp := MeasureThroughput(e, idx, search.BinarySearch, maxT, false)
			t.Row([]string{family, nb.Label}, MB(idx.SizeBytes()), tp/1e6)
		}
	}
	return []report.Table{*t}, nil
}

// fig16c reports simulated cache misses per lookup per second: the
// simulated misses-per-lookup of each structure divided by its
// measured lookup time.
func fig16c(r *Run) ([]report.Table, error) {
	t := report.New("fig16c", "Figure 16c: cache misses per lookup per second (simulated misses / measured ns)").
		Dims("index").
		Float("c-miss/op", "misses/op", 2).
		Float("ns/lookup", "ns", 1).
		Float("miss/op/s (M)", "M/s", 1)
	e, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	for _, cr := range countersMidFromEnv(e, r.Families(registry.Fig16Families)) {
		perSec := cr.CacheMisses / (cr.NsPerLookup * 1e-9) / 1e6
		t.Row([]string{cr.Family}, cr.CacheMisses, cr.NsPerLookup, perSec)
	}
	return []report.Table{*t}, nil
}

// CollectCountersMid is CollectCounters restricted to each family's
// middle configuration.
func CollectCountersMid(o Options, name dataset.Name, families []string) ([]CounterRow, error) {
	o = o.withDefaults()
	e, err := NewEnv(name, o.N, o.Lookups, o.Seed)
	if err != nil {
		return nil, err
	}
	return countersMidFromEnv(e, families), nil
}

// countersMidFromEnv is CollectCountersMid over an existing
// (checksum-recorded) environment.
func countersMidFromEnv(e *Env, families []string) []CounterRow {
	var rows []CounterRow
	for _, family := range families {
		sweep := registry.Sweep(family, e.Keys)
		if len(sweep) == 0 {
			continue
		}
		nb := sweep[len(sweep)/2]
		idx, err := nb.Builder.Build(e.Keys)
		if err != nil {
			continue
		}
		tr, m := traceFor(family, idx, e)
		if tr == nil {
			continue
		}
		meas := MeasureWarm(e, idx, search.BinarySearch)
		for _, x := range e.Lookups {
			tr.Lookup(x)
		}
		m.ResetCounters()
		for _, x := range e.Lookups {
			tr.Lookup(x)
		}
		c := m.Counters()
		nl := float64(len(e.Lookups))
		rows = append(rows, CounterRow{
			Dataset: e.Dataset, Family: family, Label: nb.Label,
			SizeMB:      MB(idx.SizeBytes()),
			NsPerLookup: meas.NsPerLookup,
			CacheMisses: float64(c.CacheMisses) / nl,
		})
	}
	return rows
}

// fig17 reports single-threaded build times at 1x..4x dataset scale
// for the fastest-lookup variant of each structure (Figure 17).
func fig17(r *Run) ([]report.Table, error) {
	o := r.Options
	families := r.Families([]string{"PGM", "RS", "RMI", "RBS", "ART", "BTree", "IBTree", "FAST", "FST", "Wormhole", "RobinHash"})
	t := report.New("fig17", "Figure 17: build times (fastest lookup variants, amzn)").
		Dims("index", "keys").
		Float("build(ms)", "ms", 2)
	for mult := 1; mult <= 4; mult++ {
		e, err := r.EnvAt(dataset.Amzn, o.N*mult, o.Lookups)
		if err != nil {
			return nil, err
		}
		for _, family := range families {
			nb, idx, _ := BestVariant(e, family, func(e *Env, idx core.Index) float64 {
				return MeasureWarm(e, idx, search.BinarySearch).NsPerLookup
			})
			if idx == nil {
				continue
			}
			_, dur, err := MeasureBuild(nb.Builder, e.Keys)
			if err != nil {
				continue
			}
			t.Row([]string{family, strconv.Itoa(o.N * mult)}, float64(dur.Microseconds())/1000)
		}
	}
	return []report.Table{*t}, nil
}

func mustBS(e *Env) core.Index {
	idx, err := rbs.BinarySearchBuilder{}.Build(e.Keys)
	if err != nil {
		panic(err)
	}
	return idx
}
