package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestOLSPerfectFit(t *testing.T) {
	// y = 2 + 3a - b exactly.
	n := 50
	a := make([]float64, n)
	b := make([]float64, n)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		a[i] = rng.Float64() * 10
		b[i] = rng.Float64() * 5
		y[i] = 2 + 3*a[i] - b[i]
	}
	reg, err := OLS(y, []string{"a", "b"}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reg.R2-1) > 1e-9 {
		t.Errorf("R² = %f, want 1", reg.R2)
	}
	if math.Abs(reg.Coef[0]-2) > 1e-6 || math.Abs(reg.Coef[1]-3) > 1e-6 || math.Abs(reg.Coef[2]+1) > 1e-6 {
		t.Errorf("coef = %v", reg.Coef)
	}
	for j, p := range reg.PValues {
		if p > 1e-6 {
			t.Errorf("p[%d] = %g, want ~0 for exact relationship", j, p)
		}
	}
}

func TestOLSNoisyFitSignificance(t *testing.T) {
	// y depends strongly on a, not at all on b (noise): a must be
	// significant, b must not be.
	n := 200
	a := make([]float64, n)
	b := make([]float64, n)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		a[i] = rng.Float64() * 10
		b[i] = rng.Float64() * 10
		y[i] = 5 + 4*a[i] + rng.NormFloat64()
	}
	reg, err := OLS(y, []string{"a", "b"}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if reg.PValues[0] > 0.001 {
		t.Errorf("p(a) = %g, want significant", reg.PValues[0])
	}
	if reg.PValues[1] < 0.01 {
		t.Errorf("p(b) = %g, want insignificant", reg.PValues[1])
	}
	if reg.R2 < 0.9 {
		t.Errorf("R² = %f", reg.R2)
	}
	// Standardized coefficient of a dominates.
	if math.Abs(reg.StdCoef[0]) < 10*math.Abs(reg.StdCoef[1]) {
		t.Errorf("std coefs = %v", reg.StdCoef)
	}
}

func TestOLSStandardizedSigns(t *testing.T) {
	// Negative relationship yields a negative standardized coefficient
	// (the paper's branch-miss sign discussion).
	n := 100
	a := make([]float64, n)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		a[i] = rng.Float64()
		y[i] = 10 - 3*a[i] + 0.01*rng.NormFloat64()
	}
	reg, err := OLS(y, []string{"a"}, a)
	if err != nil {
		t.Fatal(err)
	}
	if reg.StdCoef[0] >= 0 {
		t.Errorf("std coef = %f, want negative", reg.StdCoef[0])
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS([]float64{1, 2, 3}, nil); err == nil {
		t.Error("no predictors should error")
	}
	if _, err := OLS([]float64{1, 2, 3}, []string{"a"}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := OLS([]float64{1, 2}, []string{"a"}, []float64{1, 2}); err == nil {
		t.Error("too few observations should error")
	}
	// Collinear predictors.
	a := []float64{1, 2, 3, 4, 5, 6}
	b := []float64{2, 4, 6, 8, 10, 12}
	y := []float64{1, 2, 3, 4, 5, 6}
	if _, err := OLS(y, []string{"a", "b"}, a, b); err == nil {
		t.Error("collinear predictors should error")
	}
	if _, err := OLS([]float64{1, 2, 3}, []string{"a", "b"}, []float64{1, 2, 3}, []float64{3, 2, 1}); err == nil {
		t.Error("n <= k+1 should error")
	}
}

func TestTCDF(t *testing.T) {
	// Reference values: t-distribution with 10 df, P(T <= 1.812) ≈ 0.95.
	cases := []struct {
		t, df, want float64
	}{
		{0, 10, 0.5},
		{1.812, 10, 0.95},
		{2.228, 10, 0.975},
		{2.764, 10, 0.99},
		{1.96, 1e6, 0.975}, // approaches the normal
	}
	for _, tc := range cases {
		if got := tCDF(tc.t, tc.df); math.Abs(got-tc.want) > 0.002 {
			t.Errorf("tCDF(%f, %f) = %f, want %f", tc.t, tc.df, got, tc.want)
		}
	}
	if got := tCDF(math.Inf(1), 5); got != 1 {
		t.Errorf("tCDF(inf) = %f", got)
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%f(1,1) = %f", x, got)
		}
	}
	// I_x(2,2) = x²(3-2x).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		want := x * x * (3 - 2*x)
		if got := regIncBeta(2, 2, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("I_%f(2,2) = %f, want %f", x, got, want)
		}
	}
}

func TestRegressionString(t *testing.T) {
	y := []float64{1, 2, 3, 4, 5, 6}
	a := []float64{1, 2, 3, 4, 5, 7}
	reg, err := OLS(y, []string{"a"}, a)
	if err != nil {
		t.Fatal(err)
	}
	if reg.String() == "" {
		t.Error("empty report")
	}
}
