package repl

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/net"
	"repro/internal/serve"
)

// topology is a full in-process cluster: primary (store + log + repl
// listener + serving port) and n followers (replica store + serving
// port), all on loopback.
type topology struct {
	st  *serve.Store
	log *Log
	p   *Primary
	srv *net.Server // primary's serving port

	fs    []*Follower
	fsrvs []*net.Server

	addrs []string // serving addresses: [0] primary, then followers
}

func buildTopology(t *testing.T, keys []core.Key, payloads []uint64, shards, followers int) *topology {
	t.Helper()
	tp := &topology{}
	tp.log = NewLog(shards)
	st, err := serve.New(keys, payloads, serve.Config{
		Shards: shards, Family: "PGM", WriteHook: tp.log.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tp.st = st
	tp.p, err = NewPrimary(st, tp.log, "127.0.0.1:0", PrimaryConfig{HeartbeatEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tp.srv, err = net.Listen("127.0.0.1:0", st, net.Config{ReplStat: tp.p.ReplStatHook()})
	if err != nil {
		t.Fatal(err)
	}
	tp.addrs = append(tp.addrs, tp.srv.Addr().String())

	for i := 0; i < followers; i++ {
		f, err := StartFollower(FollowerConfig{
			Dir: t.TempDir(), PrimaryAddr: tp.p.Addr().String(),
			Store: serve.Config{Family: "PGM"}, SyncEvery: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WaitReady(15 * time.Second); err != nil {
			t.Fatal(err)
		}
		fsrv, err := net.Listen("127.0.0.1:0", f.Store(), net.Config{
			ReplStat: f.ReplStatHook(), Promote: f.PromoteHook(),
		})
		if err != nil {
			t.Fatal(err)
		}
		tp.fs = append(tp.fs, f)
		tp.fsrvs = append(tp.fsrvs, fsrv)
		tp.addrs = append(tp.addrs, fsrv.Addr().String())
	}
	return tp
}

func (tp *topology) close() {
	for _, s := range tp.fsrvs {
		_ = s.Close()
	}
	for _, f := range tp.fs {
		f.Stop()
	}
	_ = tp.srv.Close()
	_ = tp.p.Close()
	tp.st.Close()
}

func (tp *topology) settle(t *testing.T) {
	t.Helper()
	want := tp.log.Seqs()
	for _, f := range tp.fs {
		if err := f.WaitCaughtUp(want, 15*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.p.WaitAcked(15 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestRouterScatterGather drives reads and writes through a 3-replica
// router and checks routing correctness plus the conservation law.
func TestRouterScatterGather(t *testing.T) {
	keys, payloads := testKeys(t, 4000)
	tp := buildTopology(t, keys, payloads, 4, 2)
	defer tp.close()

	r, err := NewRouter(tp.addrs, 0, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Writes route to the primary and replicate.
	for i := 0; i < 300; i++ {
		if err := r.TryPut(keys[i], uint64(i)+3e9); err != nil {
			t.Fatal(err)
		}
	}
	tp.settle(t)

	// Point reads route by range; verify every updated key and a batch
	// spanning all shards (and so all replicas).
	offered := uint64(300)
	for i := 0; i < 300; i++ {
		v, ok, err := r.TryGet(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		offered++
		if !ok || v != uint64(i)+3e9 {
			t.Fatalf("routed get %d: %d,%v", i, v, ok)
		}
	}
	batch := make([]core.Key, 0, 512)
	for i := 0; i < 512; i++ {
		batch = append(batch, keys[(i*7)%len(keys)])
	}
	out := make([]uint64, len(batch))
	n, err := r.TryGetBatch(batch, out)
	if err != nil {
		t.Fatal(err)
	}
	offered++
	if n != len(batch) {
		t.Fatalf("batch found %d of %d", n, len(batch))
	}
	for i, k := range batch {
		want := payloads[0]
		_ = want
		var exp uint64
		idx := (i * 7) % len(keys)
		if idx < 300 {
			exp = uint64(idx) + 3e9
		} else {
			exp = payloads[idx]
		}
		if out[i] != exp {
			t.Fatalf("batch[%d] key %d = %d, want %d", i, k, out[i], exp)
		}
	}

	st := r.Stats()
	if st.Served+st.Shed != offered {
		t.Fatalf("conservation: served %d + shed %d != offered %d", st.Served, st.Shed, offered)
	}
	if lag := r.Lag(); len(lag) == 0 {
		t.Fatal("router reports no lag entries")
	}
}

// TestRouterFailover kills the primary and verifies the router
// promotes the most-caught-up follower and keeps serving writes.
func TestRouterFailover(t *testing.T) {
	keys, payloads := testKeys(t, 3000)
	tp := buildTopology(t, keys, payloads, 4, 2)
	defer tp.close()

	r, err := NewRouter(tp.addrs, 0, RouterConfig{
		CheckEvery: 5 * time.Millisecond, FailAfter: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for i := 0; i < 500; i++ {
		if err := r.TryPut(keys[i], uint64(i)+9e9); err != nil {
			t.Fatal(err)
		}
	}
	tp.settle(t)

	// Kill the primary node wholesale: serving port, repl port, store.
	_ = tp.srv.Close()
	_ = tp.p.Close()
	tp.st.Close()

	deadline := time.Now().Add(15 * time.Second)
	for r.Stats().Failovers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("router never failed over")
		}
		time.Sleep(5 * time.Millisecond)
	}
	promoted := 0
	for i, f := range tp.fs {
		if f.Promoted() {
			promoted++
			if got := tp.addrs[i+1]; r.PrimaryAddr() != got {
				t.Fatalf("router primary %s, promoted node %s", r.PrimaryAddr(), got)
			}
		}
	}
	if promoted != 1 {
		t.Fatalf("%d followers promoted, want exactly 1", promoted)
	}

	// Writes and reads work against the new primary; the value written
	// before the failover survived the promotion.
	if err := r.TryPut(keys[600], 4242); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	if v, ok, err := r.TryGet(keys[600]); err != nil || !ok || v != 4242 {
		t.Fatalf("read-your-write after failover: %d,%v,%v", v, ok, err)
	}
	if v, ok, err := r.TryGet(keys[499]); err != nil || !ok || v != 499+9e9 {
		t.Fatalf("pre-failover write lost: %d,%v,%v", v, ok, err)
	}
}

// TestKillRecoveryRandomized is the acceptance scenario: a follower
// killed at random points mid-bootstrap and mid-stream — with small
// snapshot chunks, a tight REPLSTATE cadence, and compactions in
// flight on both sides — must recover on restart from its last
// committed state and converge to the map oracle, never diverge.
func TestKillRecoveryRandomized(t *testing.T) {
	keys, payloads := testKeys(t, 3000)
	log := NewLog(2)
	st, err := serve.New(keys, payloads, serve.Config{
		Shards: 2, Family: "PGM", WriteHook: log.Hook(),
		CompactThreshold: 64, // compactions constantly in flight
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p, err := NewPrimary(st, log, "127.0.0.1:0", PrimaryConfig{
		HeartbeatEvery: 5 * time.Millisecond,
		ChunkSize:      2048, // many chunks per bootstrap: kills land mid-ship
		StreamBatch:    32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	oracle := map[core.Key]uint64{}
	var oracleMu sync.Mutex
	for i, k := range keys {
		oracle[k] = payloads[i]
	}

	// A background writer keeps the stream busy the whole time.
	stopWrites := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; ; i++ {
			select {
			case <-stopWrites:
				return
			default:
			}
			var k core.Key
			if rng.Intn(2) == 0 {
				k = keys[rng.Intn(len(keys))]
			} else {
				k = core.Key(rng.Uint64())
			}
			oracleMu.Lock()
			if rng.Intn(10) == 0 {
				st.Delete(k)
				delete(oracle, k)
			} else {
				v := rng.Uint64()
				st.Put(k, v)
				oracle[k] = v
			}
			oracleMu.Unlock()
			if i%64 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	dir := t.TempDir()
	cfg := FollowerConfig{
		Dir: dir, PrimaryAddr: p.Addr().String(),
		Store:     serve.Config{Family: "PGM", CompactThreshold: 64},
		SyncEvery: 2, RedialEvery: 5 * time.Millisecond,
	}
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 8; round++ {
		f, err := StartFollower(cfg)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Random kill delay: early rounds die mid-bootstrap, later ones
		// mid-stream.
		time.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond)
		f.Kill()
	}

	// Final incarnation runs to completion.
	close(stopWrites)
	writerWG.Wait()
	f, err := StartFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	if err := f.WaitReady(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := f.WaitCaughtUp(log.Seqs(), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.WaitAcked(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	st.WaitCompactions()
	f.Store().WaitCompactions()

	oracleMu.Lock()
	defer oracleMu.Unlock()
	oracleCheck(t, f.Store(), oracle)

	// And the primary itself matches the oracle (the stream's source of
	// truth was never corrupted by session churn).
	oracleCheck(t, st, oracle)
}
