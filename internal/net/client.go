package net

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Redial pacing: after a transport failure the client reconnects
// lazily on the next call, with exponential backoff between attempts
// so a dead server costs one fast dial failure per backoff window,
// never a tight dial loop. Attempts are bounded per call (exactly one)
// and rate-bounded overall; the client never gives up permanently —
// a server that comes back is rejoined within one backoff window.
const (
	redialMinBackoff = 5 * time.Millisecond
	redialMaxBackoff = 500 * time.Millisecond
	redialTimeout    = time.Second
)

// retryLaterError is the client-side face of a MsgRetryLater refusal.
// It carries the Shed marker the load generators classify on, so shed
// operations are counted as sheds, not failures or served requests.
type retryLaterError struct{}

func (retryLaterError) Error() string { return "net: server overloaded, retry later" }
func (retryLaterError) Shed() bool    { return true }

// ErrRetryLater is returned when the server refused the request under
// admission control. The request was not executed; retry after
// backing off. errors.Is-comparable, and recognized by load.IsShed.
var ErrRetryLater error = retryLaterError{}

// ErrClosed is returned for calls on a closed or failed client.
var ErrClosed = errors.New("net: client closed")

// Client is one multiplexed connection to a Server: any number of
// goroutines may issue calls concurrently, each call is matched to its
// response by request id, and responses may return in any order (the
// server's coalescer reorders Gets relative to writes). On a transport
// failure every in-flight call fails with the underlying error; the
// next call redials the server with exponential backoff (see the
// redial constants), so a restarted or recovered server is rejoined
// transparently. Only Close is permanent.
type Client struct {
	addr string // redial target ("" disables reconnection)

	wmu  sync.Mutex // serializes frame writes
	wbuf bytes.Buffer

	mu            sync.Mutex
	nc            net.Conn
	waiters       map[uint64]chan *Msg
	failErr       error  // non-nil while the current connection is dead
	closed        bool   // Close called: never redial
	epoch         uint64 // connection generation; stale readers no-op
	redialAt      time.Time
	redialBackoff time.Duration
	readerDone    chan struct{} // current connection's reader

	probing atomic.Bool // one background probe at a time
	nextID  atomic.Uint64
}

// Dial connects to a Server at addr.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	done := make(chan struct{})
	c := &Client{addr: addr, nc: nc, waiters: map[uint64]chan *Msg{}, epoch: 1, readerDone: done}
	go c.reader(nc, 1, done)
	return c, nil
}

// Close tears the connection down permanently; in-flight calls fail
// with ErrClosed and no redial is ever attempted. The current reader
// goroutine is joined before Close returns.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	done := c.readerDone
	c.mu.Unlock()
	c.failConn(0, ErrClosed)
	<-done
	return nil
}

// Healthy reports whether the client has a live connection. A false
// result is advisory: the next call will attempt a redial (unless the
// client is closed).
func (c *Client) Healthy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failErr == nil && !c.closed
}

// failConn marks connection generation epoch dead (first error wins),
// severs its socket, and wakes every waiter. epoch 0 forces failure of
// the current connection (the Close path); a stale epoch — a reader
// whose connection was already replaced by a redial — is a no-op.
func (c *Client) failConn(epoch uint64, err error) {
	c.mu.Lock()
	if epoch != 0 && epoch != c.epoch {
		c.mu.Unlock()
		return
	}
	if c.failErr == nil {
		c.failErr = err
	}
	waiters := c.waiters
	c.waiters = map[uint64]chan *Msg{}
	nc := c.nc
	c.mu.Unlock()
	_ = nc.Close()
	for _, ch := range waiters {
		close(ch)
	}
}

// redialLocked (mu held) re-establishes the connection when allowed:
// never after Close, at most once per backoff window. On success the
// epoch advances and a fresh reader starts; on failure the window
// doubles (capped) and the dial error is returned.
func (c *Client) redialLocked() error {
	if c.closed {
		return ErrClosed
	}
	if c.addr == "" {
		return c.failErr
	}
	now := time.Now()
	if now.Before(c.redialAt) {
		return c.failErr // inside the backoff window: fail fast
	}
	backoff := c.redialBackoff
	if backoff < redialMinBackoff {
		backoff = redialMinBackoff
	} else if backoff < redialMaxBackoff {
		backoff *= 2
	}
	c.redialBackoff = backoff
	c.redialAt = now.Add(backoff)
	nc, err := net.DialTimeout("tcp", c.addr, redialTimeout)
	if err != nil {
		return fmt.Errorf("net: redial %s: %w", c.addr, err)
	}
	c.nc = nc
	c.failErr = nil
	c.epoch++
	c.redialBackoff = 0
	c.redialAt = time.Time{}
	c.waiters = map[uint64]chan *Msg{}
	done := make(chan struct{})
	c.readerDone = done
	go c.reader(nc, c.epoch, done)
	return nil
}

// probe attempts one background redial if the client is dead and its
// backoff window has elapsed — the Pool's cheap way to resurrect a
// recovered server without routing a real request at it.
func (c *Client) probe() {
	if !c.probing.CompareAndSwap(false, true) {
		return
	}
	defer c.probing.Store(false)
	c.mu.Lock()
	if c.failErr != nil && !c.closed {
		_ = c.redialLocked()
	}
	c.mu.Unlock()
}

// reader dispatches one connection's response frames to their waiters
// until the stream ends. An unmatched response id (a waiter that
// already failed) is dropped; request ids are client-global, so a
// stale connection's responses can never match a newer call.
func (c *Client) reader(nc net.Conn, epoch uint64, done chan struct{}) {
	defer close(done)
	var scratch []byte
	for {
		m, sc, err := readMsg(nc, scratch)
		if err != nil {
			c.failConn(epoch, fmt.Errorf("net: connection lost: %w", err))
			return
		}
		scratch = sc
		c.mu.Lock()
		ch, ok := c.waiters[m.ID]
		if ok {
			delete(c.waiters, m.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- m // buffered (cap 1): never blocks
		}
	}
}

// call sends one request and waits for its response, redialing first
// when the previous connection failed.
func (c *Client) call(m *Msg) (*Msg, error) {
	m.ID = c.nextID.Add(1)
	ch := make(chan *Msg, 1)
	c.mu.Lock()
	if c.failErr != nil || c.closed {
		if err := c.redialLocked(); err != nil {
			c.mu.Unlock()
			return nil, err
		}
	}
	c.waiters[m.ID] = ch
	nc := c.nc
	epoch := c.epoch
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeMsg(nc, &c.wbuf, m)
	c.wmu.Unlock()
	if err != nil {
		c.failConn(epoch, fmt.Errorf("net: write failed: %w", err))
		return nil, err
	}

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.failErr
		c.mu.Unlock()
		if err == nil {
			// The connection died and was already replaced by a
			// concurrent redial; this call's response is gone either way.
			err = errors.New("net: connection reset during call")
		}
		return nil, err
	}
	switch resp.Type {
	case MsgRetryLater:
		return nil, ErrRetryLater
	case MsgError:
		return nil, fmt.Errorf("net: server: %s", resp.Err)
	}
	return resp, nil
}

// Get returns the live payload for key, or found=false when absent.
func (c *Client) Get(key core.Key) (val uint64, found bool, err error) {
	resp, err := c.call(&Msg{Type: MsgGet, Key: key})
	if err != nil {
		return 0, false, err
	}
	if resp.Type != MsgValue {
		return 0, false, fmt.Errorf("net: unexpected response type %d to Get", resp.Type)
	}
	return resp.Val, resp.Found, nil
}

// GetBatch fills out[i] with the payload of keys[i] (0 when absent)
// and returns the number found — the serve.Store batch contract, over
// the wire as one request frame.
func (c *Client) GetBatch(keys []core.Key, out []uint64) (int, error) {
	if len(out) < len(keys) {
		return 0, errors.New("net: GetBatch output shorter than key batch")
	}
	if len(keys) > MaxBatch {
		return 0, fmt.Errorf("net: batch of %d keys exceeds limit %d", len(keys), MaxBatch)
	}
	resp, err := c.call(&Msg{Type: MsgGetBatch, Keys: keys})
	if err != nil {
		return 0, err
	}
	if resp.Type != MsgValueBatch || len(resp.Vals) != len(keys) {
		return 0, fmt.Errorf("net: malformed batch response (type %d, %d vals for %d keys)",
			resp.Type, len(resp.Vals), len(keys))
	}
	copy(out, resp.Vals)
	return int(resp.FoundN), nil
}

// Put inserts or updates key.
func (c *Client) Put(key core.Key, val uint64) error {
	return c.expectOK(&Msg{Type: MsgPut, Key: key, Val: val})
}

// Delete removes key (a no-op for absent keys, as in the store).
func (c *Client) Delete(key core.Key) error {
	return c.expectOK(&Msg{Type: MsgDelete, Key: key})
}

func (c *Client) expectOK(m *Msg) error {
	resp, err := c.call(m)
	if err != nil {
		return err
	}
	if resp.Type != MsgOK {
		return fmt.Errorf("net: unexpected response type %d to write", resp.Type)
	}
	return nil
}

// Stats fetches the server's live counters and latency histogram.
// Stats requests bypass the server's admission control, so monitoring
// works during overload.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.call(&Msg{Type: MsgStats})
	if err != nil {
		return nil, err
	}
	if resp.Type != MsgStatsReply || resp.Stats == nil {
		return nil, fmt.Errorf("net: unexpected response type %d to Stats", resp.Type)
	}
	return resp.Stats, nil
}

// Topo fetches the server's shard separators — the routing table a
// range-aware router partitions key batches with. Like Stats, Topo
// bypasses admission control.
func (c *Client) Topo() ([]core.Key, error) {
	resp, err := c.call(&Msg{Type: MsgTopo})
	if err != nil {
		return nil, err
	}
	if resp.Type != MsgTopoReply {
		return nil, fmt.Errorf("net: unexpected response type %d to Topo", resp.Type)
	}
	return resp.Keys, nil
}

// ReplStat fetches the server's replication status: role, epoch, the
// snapshot generation it was built from, and per-shard applied
// sequence numbers. Errors when the server has no replication layer.
func (c *Client) ReplStat() (role uint8, epoch, gen uint64, seqs []uint64, err error) {
	resp, err := c.call(&Msg{Type: MsgReplStat})
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if resp.Type != MsgReplStatReply {
		return 0, 0, 0, nil, fmt.Errorf("net: unexpected response type %d to ReplStat", resp.Type)
	}
	return resp.Role, resp.Epoch, resp.Gen, resp.Seqs, nil
}

// Promote asks the server to become the primary (failover). Errors
// when the server is not promotable or refuses.
func (c *Client) Promote() error {
	return c.expectOK(&Msg{Type: MsgPromote})
}

// Pool is a fixed set of client connections striped round-robin per
// call. It satisfies load.Target and load.ErrTarget, so the open- and
// closed-loop generators can drive a remote store exactly as they
// drive an in-process one — with sheds surfacing as ErrRetryLater
// through the Try methods.
type Pool struct {
	cs    []*Client
	addrs []string // dial target per connection, for Stats dedup
	next  atomic.Uint64
}

// DialPool opens n connections to addr. On any dial failure the
// already-opened connections are closed.
func DialPool(addr string, n int) (*Pool, error) {
	return DialPoolMulti([]string{addr}, n)
}

// DialPoolMulti opens n connections striped round-robin across addrs
// (every address gets at least one, so n is raised to len(addrs) when
// smaller) — the multi-server pool whose calls spread over every
// server and whose Stats merge across them. On any dial failure the
// already-opened connections are closed.
func DialPoolMulti(addrs []string, n int) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, errors.New("net: no addresses")
	}
	if n < len(addrs) {
		n = len(addrs)
	}
	p := &Pool{cs: make([]*Client, n), addrs: make([]string, n)}
	for i := range p.cs {
		addr := addrs[i%len(addrs)]
		c, err := Dial(addr)
		if err != nil {
			for _, prev := range p.cs[:i] {
				_ = prev.Close()
			}
			return nil, err
		}
		p.cs[i] = c
		p.addrs[i] = addr
	}
	return p, nil
}

// Close closes every connection of the pool.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.cs {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pick returns the next connection round-robin, skipping dead ones: a
// server that vanished stops receiving requests immediately instead of
// failing every len(cs)/nth call. Skipped connections are probed in
// the background (rate-limited by the redial backoff), so a recovered
// server rejoins the rotation without a real request paying the dial.
// With every connection dead, the scheduled one is returned anyway —
// its call attempts the redial and surfaces the true error.
func (p *Pool) pick() *Client {
	n := uint64(len(p.cs))
	start := p.next.Add(1)
	for k := uint64(0); k < n; k++ {
		c := p.cs[(start+k)%n]
		if c.Healthy() {
			if k > 0 {
				go p.cs[start%n].probe()
			}
			return c
		}
	}
	return p.cs[start%n]
}

// Stats fetches one snapshot per distinct server behind the pool and
// merges them (counters sum, latency histograms merge, the queue
// high-water takes the max) — the truthful pool-wide view. Connections
// to the same address share one server, so only the first connection
// per address is asked; a single-server pool reports that server's
// stats exactly, never double-counted.
func (p *Pool) Stats() (*Stats, error) {
	merged := &Stats{}
	seen := map[string]bool{}
	for i, c := range p.cs {
		if seen[p.addrs[i]] {
			continue
		}
		seen[p.addrs[i]] = true
		s, err := c.Stats()
		if err != nil {
			return nil, err
		}
		merged.Merge(s)
	}
	return merged, nil
}

// TryGet, TryGetBatch, and TryPut implement load.ErrTarget.
func (p *Pool) TryGet(key core.Key) (uint64, bool, error) { return p.pick().Get(key) }

func (p *Pool) TryGetBatch(keys []core.Key, out []uint64) (int, error) {
	return p.pick().GetBatch(keys, out)
}

func (p *Pool) TryPut(key core.Key, val uint64) error { return p.pick().Put(key, val) }

// Get, GetBatch, and Put complete the load.Target surface. The
// generators never reach them on an ErrTarget (they prefer the Try
// variants); for direct callers they degrade errors to zero values —
// use the Try variants or Client when the error matters.
func (p *Pool) Get(key core.Key) (uint64, bool) {
	v, ok, err := p.TryGet(key)
	if err != nil {
		return 0, false
	}
	return v, ok
}

func (p *Pool) GetBatch(keys []core.Key, out []uint64) int {
	n, err := p.TryGetBatch(keys, out)
	if err != nil {
		return 0
	}
	return n
}

func (p *Pool) Put(key core.Key, val uint64) {
	_ = p.TryPut(key, val)
}
