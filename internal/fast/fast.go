// Package fast implements a FAST-style architecture-sensitive search
// tree (Kim et al., SIGMOD'10; Section 4.1.1 of the paper): an implicit
// k-ary tree over a sorted key subset, laid out level by level in flat
// arrays so that each node is a contiguous cache-line-sized block.
//
// The original FAST compares all keys of a node at once with AVX
// gather/compare instructions. Go has no stdlib SIMD, so in-node
// comparison is a scalar scan over the same blocked layout — the
// architectural idea (one memory transfer per level, branch-light
// in-node resolution) is preserved; the SIMD constant factor is not
// (see DESIGN.md substitution 5).
package fast

import (
	"errors"

	"repro/internal/core"
)

// blockKeys is the node width: 16 keys per node. With 64-bit keys a
// node spans two cache lines (one for 32-bit keys, which is where the
// paper's Figure 10 doubling comes from).
const blockKeys = 16

// Tree is an implicit k-ary search tree over a sorted key array,
// generic over key width.
//
// levels[0] is the sorted key array itself; levels[l+1][j] holds the
// maximum key of block j of levels[l] (a block is blockKeys consecutive
// entries), so each upper level is a 16-ary separator directory of the
// level below. The topmost level fits in a single block.
type Tree[K interface{ ~uint32 | ~uint64 }] struct {
	levels [][]K
}

// NewTree builds the implicit tree over sorted keys.
func NewTree[K interface{ ~uint32 | ~uint64 }](keys []K) (*Tree[K], error) {
	if len(keys) == 0 {
		return nil, errors.New("fast: empty key set")
	}
	t := &Tree[K]{levels: [][]K{keys}}
	cur := keys
	for len(cur) > blockKeys {
		nBlocks := (len(cur) + blockKeys - 1) / blockKeys
		up := make([]K, nBlocks)
		for j := 0; j < nBlocks; j++ {
			end := (j+1)*blockKeys - 1
			if end >= len(cur) {
				end = len(cur) - 1
			}
			up[j] = cur[end]
		}
		t.levels = append(t.levels, up)
		cur = up
	}
	return t, nil
}

// Ceiling returns the index (into the sorted key array) of the
// smallest key >= x, or len(keys) when every key is smaller.
func (t *Tree[K]) Ceiling(x K) int {
	top := t.levels[len(t.levels)-1]
	if x > top[len(top)-1] {
		return len(t.levels[0])
	}
	// Scan the top block, then descend: the selected separator index at
	// level l is the block number to scan at level l-1. Each in-block
	// scan finds the first separator >= x (such an entry exists at
	// every level because x <= global max and block maxima propagate).
	block := 0
	for li := len(t.levels) - 1; li >= 0; li-- {
		lvl := t.levels[li]
		start := block * blockKeys
		end := start + blockKeys
		if end > len(lvl) {
			end = len(lvl)
		}
		i := start
		for i < end && lvl[i] < x {
			i++
		}
		if li == 0 {
			return i
		}
		block = i
	}
	return 0 // unreachable
}

// Height reports the number of levels, including the key array.
func (t *Tree[K]) Height() int { return len(t.levels) }

// SizeBytes reports the footprint of every level including the subset
// key array (the subset is part of the index, distinct from the data).
func (t *Tree[K]) SizeBytes() int {
	var k K
	keySize := 8
	if _, ok := any(k).(uint32); ok {
		keySize = 4
	}
	total := 0
	for _, lvl := range t.levels {
		total += len(lvl) * keySize
	}
	return total
}

// Index adapts Tree to core.Index with the subset-stride size knob.
type Index struct {
	tree   *Tree[core.Key]
	n      int
	stride int
}

// Builder builds FAST indexes with a fixed stride.
type Builder struct {
	// Stride inserts every Stride-th key. Clamped to at least 1.
	Stride int
}

// Name implements core.Builder.
func (b Builder) Name() string { return "FAST" }

// Build implements core.Builder.
func (b Builder) Build(keys []core.Key) (core.Index, error) {
	n := len(keys)
	if n == 0 {
		return nil, errors.New("fast: empty key set")
	}
	stride := b.Stride
	if stride < 1 {
		stride = 1
	}
	subset := make([]core.Key, 0, n/stride+1)
	for i := 0; i < n; i += stride {
		subset = append(subset, keys[i])
	}
	t, err := NewTree(subset)
	if err != nil {
		return nil, err
	}
	return &Index{tree: t, n: n, stride: stride}, nil
}

// Lookup implements core.Index. Subset entry i corresponds to data
// position i*stride, so the ceiling entry brackets the lower bound
// between the previous subset position (exclusive) and its own.
func (idx *Index) Lookup(key core.Key) core.Bound {
	i := idx.tree.Ceiling(key)
	m := len(idx.tree.levels[0])
	var lo, hi int
	switch {
	case i == 0:
		lo, hi = 0, 1
	case i == m:
		lo, hi = (m-1)*idx.stride+1, idx.n
	default:
		lo, hi = (i-1)*idx.stride+1, i*idx.stride+1
	}
	if hi > idx.n {
		hi = idx.n
	}
	if lo > hi {
		lo = hi
	}
	return core.Bound{Lo: lo, Hi: hi}
}

// SizeBytes implements core.Index.
func (idx *Index) SizeBytes() int { return idx.tree.SizeBytes() }

// Name implements core.Index.
func (idx *Index) Name() string { return "FAST" }

// Height exposes the tree height for the explanatory analysis.
func (idx *Index) Height() int { return idx.tree.Height() }

// CeilingPath is Ceiling with a visitor invoked once per level touched
// with (level, blockStart, blockLen) in that level's array; used by the
// performance-counter simulation.
func (t *Tree[K]) CeilingPath(x K, visit func(level, blockStart, blockLen int)) int {
	top := t.levels[len(t.levels)-1]
	if x > top[len(top)-1] {
		visit(len(t.levels)-1, 0, len(top))
		return len(t.levels[0])
	}
	block := 0
	for li := len(t.levels) - 1; li >= 0; li-- {
		lvl := t.levels[li]
		start := block * blockKeys
		end := start + blockKeys
		if end > len(lvl) {
			end = len(lvl)
		}
		visit(li, start, end-start)
		i := start
		for i < end && lvl[i] < x {
			i++
		}
		if li == 0 {
			return i
		}
		block = i
	}
	return 0
}

// LevelLens reports the entry count of every level, bottom first.
func (t *Tree[K]) LevelLens() []int {
	out := make([]int, len(t.levels))
	for i, l := range t.levels {
		out[i] = len(l)
	}
	return out
}

// IndexTree exposes the underlying tree of an Index.
func (idx *Index) IndexTree() *Tree[core.Key] { return idx.tree }

// Stride returns the subset stride.
func (idx *Index) Stride() int { return idx.stride }
