package obs

import (
	"sync/atomic"
	"time"
)

// Phase names one segment of a request's life. The serving stack
// decomposes a point lookup into: queue-wait (admission to coalescer
// dequeue), coalesce-wait (dequeue to batch flush), shard-route
// (key-to-shard fan-out), run-probe (index descent across the shard's
// runs), and merge (scatter-gather of batch results).
type Phase uint8

const (
	PhaseQueueWait Phase = iota
	PhaseCoalesceWait
	PhaseShardRoute
	PhaseRunProbe
	PhaseMerge
	numPhases
)

var phaseNames = [numPhases]string{
	"queue_wait", "coalesce_wait", "shard_route", "run_probe", "merge",
}

// String returns the phase's metric label.
func (p Phase) String() string { return phaseNames[p] }

// DefaultTraceEvery is the default sampling stride: one traced request
// per 1024. At that rate the tracer's cost on the untraced fast path
// is one atomic add and one mask test per request; the traced request
// pays a handful of time.Now calls.
const DefaultTraceEvery = 1024

// Tracer samples requests and records their per-phase latency into
// registry histograms (sosd_trace_phase_ns{phase=...}). A nil *Tracer
// is valid and never samples.
type Tracer struct {
	mask    uint64 // every-1; every is a power of two
	n       atomic.Uint64
	sampled *Counter
	phases  [numPhases]*Histogram
}

// NewTracer registers a tracer's series in r and returns it. every is
// the sampling stride, rounded up to a power of two; <= 0 uses
// DefaultTraceEvery. A nil registry returns a nil (never-sampling)
// tracer.
func NewTracer(r *Registry, every int) *Tracer {
	if r == nil {
		return nil
	}
	if every <= 0 {
		every = DefaultTraceEvery
	}
	pow := uint64(1)
	for pow < uint64(every) {
		pow <<= 1
	}
	t := &Tracer{mask: pow - 1}
	t.sampled = r.Counter("sosd_trace_sampled_total")
	for p := Phase(0); p < numPhases; p++ {
		t.phases[p] = r.Histogram("sosd_trace_phase_ns", Label{"phase", phaseNames[p]})
	}
	return t
}

// Sample decides whether this request is traced: nil for the common
// (untraced) case, a live Span on the sampling stride. The untraced
// cost is one atomic add and a mask test.
func (t *Tracer) Sample() *Span {
	if t == nil {
		return nil
	}
	if t.n.Add(1)&t.mask != 0 {
		return nil
	}
	t.sampled.Inc()
	return &Span{t: t, last: time.Now()}
}

// Span is one sampled request's trace. All methods no-op on a nil
// span, so instrumented code calls them unconditionally. A span needs
// no finish call — each phase records as it is marked.
type Span struct {
	t    *Tracer
	last time.Time
}

// Mark records phase p as the time elapsed since the span's creation
// or its previous Mark — the sequential-phase form.
func (s *Span) Mark(p Phase) {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.phases[p].Observe(now.Sub(s.last).Nanoseconds())
	s.last = now
}

// Observe records an explicitly measured duration for phase p without
// moving the span's sequential clock.
func (s *Span) Observe(p Phase, d time.Duration) {
	if s == nil {
		return
	}
	s.t.phases[p].Observe(d.Nanoseconds())
}
